"""Unit tests for the beacon-driven LocalView — the distributed
realization of the NodeView interface (shared with the round model)."""

import numpy as np
import pytest

from repro.core.metrics import EnergyAwareMetric, HopMetric
from repro.core.state import NodeState
from repro.energy import FirstOrderRadioModel
from repro.mobility import StaticPlacement
from repro.net import MacConfig, Network
from repro.protocols.registry import make_agent_factory
from repro.protocols.ss_spst import LocalView, SSSPSTAgent
from repro.metrics.hub import MetricsHub
from repro.sim import Simulator
from repro.util.geometry import Arena
from repro.util.rng import RngStreams

RADIO = FirstOrderRadioModel(e_elec=1e-6, e_rx=0.3e-6, max_range=250.0)


def settled_network(positions, protocol="ss-spst-e", members=None, until=10.0):
    sim = Simulator()
    streams = RngStreams(21)
    mob = StaticPlacement(
        len(positions), Arena(1000, 1000), positions=np.array(positions, dtype=float)
    )
    net = Network(sim, mob, RADIO, streams, mac_config=MacConfig())
    net.set_group(source=0, members=members if members is not None else range(1, mob.n))
    net.hub = MetricsHub(n_receivers=len(net.receivers))
    net.attach_agents(make_agent_factory(protocol))
    net.start()
    sim.run(until=until)
    return sim, net


class TestLocalViewBasics:
    def test_neighbors_exclude_own_children(self):
        # Chain 0-1-2: node 1's view must not offer its child 2 as parent.
        sim, net = settled_network([[0, 0], [200, 0], [400, 0]])
        view = LocalView(net.nodes[1].agent)
        assert 2 not in view.neighbors_of(1)
        assert 0 in view.neighbors_of(1)

    def test_state_of_reflects_beacons(self):
        sim, net = settled_network([[0, 0], [200, 0], [400, 0]])
        view = LocalView(net.nodes[2].agent)
        st = view.state_of(1)
        assert isinstance(st, NodeState)
        assert st.parent == 0
        assert st.hop == 1

    def test_dist_from_positions(self):
        sim, net = settled_network([[0, 0], [200, 0], [400, 0]])
        view = LocalView(net.nodes[1].agent)
        assert view.dist(1, 0) == pytest.approx(200.0, abs=1.0)

    def test_member_and_flag(self):
        sim, net = settled_network([[0, 0], [200, 0], [400, 0]], members=[2])
        view = LocalView(net.nodes[1].agent)
        assert view.member(2) is True
        assert view.flag_of(2) is True
        # Node 1 itself: relay flagged by its member child.
        assert view.flag_of(1) is True
        assert view.member(1) is False


class TestRadiusBookkeeping:
    def test_radius_without_costliest_child(self):
        # Star: 0 with children 1 (150 m) and 2 (240 m).
        sim, net = settled_network([[0, 0], [150, 0], [0, 240]])
        a1 = net.nodes[1].agent
        view = LocalView(a1)
        # From 1's standpoint: 0's flagged radius without 2 would be 150.
        assert view.radius_without(0, 2, flagged_only=True) == pytest.approx(150.0, abs=2.0)
        # And without 1 itself: 240 remains.
        assert view.radius_without(0, 1, flagged_only=True) == pytest.approx(240.0, abs=2.0)

    def test_radius_without_non_child_is_noop(self):
        sim, net = settled_network([[0, 0], [150, 0], [0, 240]])
        view = LocalView(net.nodes[1].agent)
        full = view.radius_without(0, 99, flagged_only=True)
        assert full == pytest.approx(240.0, abs=2.0)

    def test_count_in_range_uses_sorted_dists(self):
        sim, net = settled_network([[0, 0], [150, 0], [0, 240]], protocol="ss-spst-e")
        view = LocalView(net.nodes[1].agent)
        assert view.count_in_range(0, 160.0) == 1  # just node 1
        assert view.count_in_range(0, 241.0) == 2
        assert view.count_in_range(0, 0.0) == 0


class TestPathPrice:
    def test_hop_metric_ignores_coupling(self):
        sim, net = settled_network([[0, 0], [200, 0], [400, 0]], protocol="ss-spst")
        agent2 = net.nodes[2].agent
        view = LocalView(agent2)
        metric = HopMetric(RADIO)
        assert view.path_price(1, 2, True, metric) == view.state_of(1).cost

    def test_lighting_pruned_branch_costs_more(self):
        """A member evaluating a pruned relay pays for lighting the branch:
        the flagged price exceeds the unflagged one."""
        # 0 source; 1 is a pruned relay (no members beyond); 2 a member.
        sim, net = settled_network(
            [[0, 0], [200, 0], [0, 200], [400, 0]], members=[2], until=12.0
        )
        # Node 3 (non-member here... make it member-like check via prices)
        agent3 = net.nodes[3].agent
        view = LocalView(agent3)
        if 1 in view.table.ids():
            st = view.table.get(1).state
            metric = EnergyAwareMetric(RADIO)
            flagged = view.path_price(1, 3, True, metric)
            unflagged = view.path_price(1, 3, False, metric)
            assert flagged >= unflagged

    def test_shared_parent_correction_prices_detachment(self):
        """The static 5-node configuration that used to flip-flop: after
        settling, every node's guard must hold (no pending moves)."""
        sim, net = settled_network(
            [[0, 0], [150, 0], [300, 0], [150, 150], [300, 150]],
            protocol="ss-spst-e",
            until=30.0,
        )
        changes_now = sum(n.agent.parent_changes for n in net.nodes)
        sim.run(until=90.0)
        assert sum(n.agent.parent_changes for n in net.nodes) == changes_now


class TestMediumCapture:
    def test_strong_signal_captures(self):
        """A close transmitter's frame survives a distant interferer."""
        from repro.net.medium import WirelessMedium
        from tests.test_net import RecordingAgent, data_packet, make_network

        # Receiver 1 sits 10 m from sender 0 (rx power (40/10)^2 = 16) and
        # 240 m from interferer 2 (rx power (250/240)^2 ~= 1.09): the
        # power ratio ~14.7 clears CPThresh = 10.
        sim, net = make_network([[0, 0], [10, 0], [250, 0]])
        net.medium.capture_threshold = 10.0
        net.medium.broadcast(0, data_packet(0, seq=1), tx_range=40.0)
        net.medium.broadcast(2, data_packet(2, seq=2), tx_range=250.0)
        sim.run()
        got = [p.origin for _, p in net.nodes[1].agent.received]
        assert got == [0]  # close frame captured; distant one lost at 1

    def test_comparable_signals_collide(self):
        from tests.test_net import data_packet, make_network

        sim, net = make_network([[0, 0], [100, 0], [200, 0]])
        net.medium.capture_threshold = 10.0
        net.medium.broadcast(0, data_packet(0, seq=1), tx_range=120.0)
        net.medium.broadcast(2, data_packet(2, seq=2), tx_range=120.0)
        sim.run()
        assert net.nodes[1].agent.received == []
