"""Tests for the network substrate: packets, medium, MAC, nodes, tables."""

import numpy as np
import pytest

from repro.energy import FirstOrderRadioModel
from repro.mobility import StaticPlacement
from repro.net import (
    CsmaMac,
    MacConfig,
    Network,
    NeighborTable,
    Packet,
    PacketKind,
    ProtocolAgent,
)
from repro.sim import Simulator
from repro.util.geometry import Arena
from repro.util.rng import RngStreams


class RecordingAgent(ProtocolAgent):
    """Test agent that records receptions; usefulness is configurable."""

    def __init__(self, node, useful=True):
        super().__init__(node)
        self.useful = useful
        self.received = []

    def start(self):
        pass

    def handle_packet(self, packet):
        self.received.append((self.sim.now, packet))
        return self.useful


def make_network(positions, loss_prob=0.0, mac=None, radio=None):
    sim = Simulator()
    arena = Arena(1000.0, 1000.0)
    mobility = StaticPlacement(len(positions), arena, positions=np.array(positions, dtype=float))
    net = Network(
        sim,
        mobility,
        radio or FirstOrderRadioModel(),
        RngStreams(7),
        mac_config=mac or MacConfig(jitter_max=0.0),
        loss_prob=loss_prob,
    )
    net.attach_agents(lambda node: RecordingAgent(node))
    return sim, net


def data_packet(src, seq=0, size=512):
    return Packet(PacketKind.DATA, src=src, origin=src, seq=seq, size_bytes=size)


class TestPacket:
    def test_bits(self):
        assert data_packet(0, size=512).bits == 4096

    def test_traffic_class(self):
        assert data_packet(0).traffic_class == "data"
        beacon = Packet(PacketKind.BEACON, 0, 0, 0, 32)
        assert beacon.traffic_class == "control"
        assert beacon.is_control

    def test_relay_preserves_identity(self):
        p = data_packet(3, seq=9)
        p2 = p.relay(new_src=5)
        assert p2.src == 5
        assert p2.origin == 3 and p2.seq == 9
        assert p2.flow_key == p.flow_key
        assert p2.uid != p.uid

    def test_relay_payload_update(self):
        p = Packet(PacketKind.BEACON, 0, 0, 0, 32, payload={"a": 1})
        p2 = p.relay(1, extra_payload={"b": 2})
        assert p2.payload == {"a": 1, "b": 2}
        assert p.payload == {"a": 1}  # original untouched

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.DATA, 0, 0, 0, 0)


class TestMediumDelivery:
    def test_in_range_nodes_receive(self):
        # 0 at origin; 1 at 100 m (in range); 2 at 400 m (out of range).
        sim, net = make_network([[0, 0], [100, 0], [400, 0]])
        net.medium.broadcast(0, data_packet(0), tx_range=150.0)
        sim.run()
        assert len(net.nodes[1].agent.received) == 1
        assert len(net.nodes[2].agent.received) == 0

    def test_power_control_limits_receivers(self):
        sim, net = make_network([[0, 0], [100, 0], [200, 0]])
        net.medium.broadcast(0, data_packet(0), tx_range=120.0)
        sim.run()
        assert len(net.nodes[1].agent.received) == 1
        assert len(net.nodes[2].agent.received) == 0  # in max range but not tx power

    def test_delivery_after_airtime(self):
        sim, net = make_network([[0, 0], [100, 0]])
        pkt = data_packet(0, size=512)  # 4096 bits / 2 Mbps = 2.048 ms
        net.medium.broadcast(0, pkt, tx_range=150.0)
        sim.run()
        t, _ = net.nodes[1].agent.received[0]
        assert t == pytest.approx(4096 / 2_000_000.0)

    def test_sender_does_not_receive_own_frame(self):
        sim, net = make_network([[0, 0], [100, 0]])
        net.medium.broadcast(0, data_packet(0), tx_range=150.0)
        sim.run()
        assert len(net.nodes[0].agent.received) == 0

    def test_dead_node_cannot_transmit(self):
        sim, net = make_network([[0, 0], [100, 0]])
        net.nodes[0].alive = False
        with pytest.raises(RuntimeError):
            net.medium.broadcast(0, data_packet(0), tx_range=150.0)


class TestMediumEnergy:
    def test_sender_charged_for_tx_range(self):
        sim, net = make_network([[0, 0], [100, 0]])
        radio = net.radio
        pkt = data_packet(0)
        net.medium.broadcast(0, pkt, tx_range=130.0)
        sim.run()
        assert net.nodes[0].ledger.snapshot().tx_data == pytest.approx(
            radio.tx_energy(pkt.bits, 130.0)
        )

    def test_receiver_charged_rx(self):
        sim, net = make_network([[0, 0], [100, 0]])
        pkt = data_packet(0)
        net.medium.broadcast(0, pkt, tx_range=150.0)
        sim.run()
        assert net.nodes[1].ledger.snapshot().rx_data == pytest.approx(
            net.radio.rx_energy(pkt.bits)
        )

    def test_useless_reception_becomes_discard(self):
        sim, net = make_network([[0, 0], [100, 0]])
        net.nodes[1].agent.useful = False  # overhearing node
        pkt = data_packet(0)
        net.medium.broadcast(0, pkt, tx_range=150.0)
        sim.run()
        snap = net.nodes[1].ledger.snapshot()
        assert snap.rx_data == 0.0
        assert snap.discard_data == pytest.approx(net.radio.rx_energy(pkt.bits))

    def test_overhearing_charges_all_in_range(self):
        """The paper's core premise: every node in the coverage area pays
        reception energy whether or not the packet was meant for it."""
        sim, net = make_network([[0, 0], [50, 0], [100, 0], [150, 0]])
        net.medium.broadcast(0, data_packet(0), tx_range=160.0)
        sim.run()
        for nid in (1, 2, 3):
            assert net.nodes[nid].ledger.total > 0.0


class TestMediumCollisions:
    def test_overlapping_frames_collide(self):
        # 0 and 2 both in range of 1; simultaneous transmissions collide at 1.
        sim, net = make_network([[0, 0], [100, 0], [200, 0]])
        net.medium.broadcast(0, data_packet(0), tx_range=150.0)
        net.medium.broadcast(2, data_packet(2), tx_range=150.0)
        sim.run()
        assert len(net.nodes[1].agent.received) == 0
        assert net.medium.stats.frames_collided >= 2
        # Collided receptions still cost energy, filed as discard.
        assert net.nodes[1].ledger.snapshot().discard_data > 0.0

    def test_non_overlapping_frames_deliver(self):
        sim, net = make_network([[0, 0], [100, 0], [200, 0]])
        net.medium.broadcast(0, data_packet(0, seq=0), tx_range=150.0)
        # Second frame well after the first ends.
        sim.schedule(0.01, lambda: net.medium.broadcast(2, data_packet(2, seq=1), tx_range=150.0))
        sim.run()
        assert len(net.nodes[1].agent.received) == 2

    def test_half_duplex(self):
        # 1 transmits; a frame arriving at 1 during its own tx is lost.
        sim, net = make_network([[0, 0], [100, 0]])
        net.medium.broadcast(1, data_packet(1), tx_range=150.0)
        net.medium.broadcast(0, data_packet(0), tx_range=150.0)
        sim.run()
        assert len(net.nodes[1].agent.received) == 0

    def test_hidden_terminal(self):
        """0 and 3 cannot hear each other but both reach 1 -> collision."""
        sim, net = make_network([[0, 0], [150, 0], [300, 0], [300, 1]])
        net.medium.broadcast(0, data_packet(0), tx_range=200.0)
        net.medium.broadcast(3, data_packet(3), tx_range=200.0)
        sim.run()
        # Node 1 is in range of 0 only at 150m? 0->1 = 150, 3->1 = ~150.0;
        # both reach it, so it collides.
        assert len(net.nodes[1].agent.received) == 0


class TestMediumLoss:
    def test_random_loss_applied(self):
        sim, net = make_network([[0, 0], [100, 0]], loss_prob=0.5)
        for i in range(200):
            sim.schedule(i * 0.01, lambda i=i: net.medium.broadcast(0, data_packet(0, seq=i), tx_range=150.0))
        sim.run()
        received = len(net.nodes[1].agent.received)
        assert 40 < received < 160  # ~100 expected

    def test_loss_prob_validation(self):
        with pytest.raises(ValueError):
            make_network([[0, 0]], loss_prob=1.5)


class TestCarrierSense:
    def test_busy_during_transmission(self):
        sim, net = make_network([[0, 0], [100, 0]])
        net.medium.broadcast(0, data_packet(0), tx_range=150.0)
        assert net.medium.carrier_busy(1)  # hears the ongoing frame
        assert net.medium.carrier_busy(0)  # own transmission
        sim.run()
        assert not net.medium.carrier_busy(1)

    def test_mac_defers_until_idle(self):
        sim, net = make_network([[0, 0], [100, 0], [200, 0]], mac=MacConfig(jitter_max=0.0, backoff_max=0.005))
        # Node 0 seizes the channel directly; node 1's MAC must defer.
        net.medium.broadcast(0, data_packet(0, seq=0), tx_range=150.0)
        net.nodes[1].send(data_packet(1, seq=1), tx_range=150.0)
        sim.run()
        # Node 2 hears node 1's (deferred) frame cleanly.
        got = [p.origin for _, p in net.nodes[2].agent.received]
        assert got == [1]

    def test_mac_drops_after_max_attempts(self):
        sim, net = make_network(
            [[0, 0], [100, 0]],
            mac=MacConfig(jitter_max=0.0, backoff_max=0.0001, max_attempts=2),
        )
        # Saturate the channel from node 0 with back-to-back frames.
        def flood(k=0):
            if k < 200:
                net.medium.broadcast(0, data_packet(0, seq=k), tx_range=150.0)
                sim.schedule(0.0005, flood, k + 1)

        flood()
        net.nodes[1].send(data_packet(1, seq=999), tx_range=150.0)
        sim.run()
        assert net.nodes[1].mac.frames_dropped == 1


class TestNeighborTable:
    def test_update_and_get(self):
        table = NeighborTable(timeout=5.0)
        table.update(3, now=1.0, position=np.array([1.0, 2.0]), state={"cost": 7})
        info = table.get(3)
        assert info is not None
        assert info.state["cost"] == 7
        assert 3 in table

    def test_expiry(self):
        table = NeighborTable(timeout=5.0)
        table.update(1, now=0.0)
        table.update(2, now=4.0)
        dead = table.expire(now=6.0)
        assert dead == [1]
        assert 1 not in table and 2 in table

    def test_refresh_prevents_expiry(self):
        table = NeighborTable(timeout=5.0)
        table.update(1, now=0.0)
        table.update(1, now=4.0)
        assert table.expire(now=6.0) == []

    def test_forget(self):
        table = NeighborTable(timeout=5.0)
        table.update(1, now=0.0)
        table.forget(1)
        assert len(table) == 0

    def test_distance_from(self):
        table = NeighborTable(timeout=5.0)
        table.update(1, now=0.0, position=np.array([3.0, 4.0]))
        assert table.get(1).distance_from(np.zeros(2)) == pytest.approx(5.0)

    def test_distance_requires_position(self):
        table = NeighborTable(timeout=5.0)
        table.update(1, now=0.0)
        with pytest.raises(ValueError):
            table.get(1).distance_from(np.zeros(2))

    def test_invalid_timeout(self):
        with pytest.raises(ValueError):
            NeighborTable(timeout=0.0)


class TestNetwork:
    def test_group_declaration(self):
        sim, net = make_network([[0, 0], [100, 0], [200, 0]])
        net.set_group(source=0, members=[2])
        assert net.source == 0
        assert net.members == {0, 2}
        assert net.receivers == {2}

    def test_adjacency_excludes_dead(self):
        sim, net = make_network([[0, 0], [100, 0], [200, 0]])
        adj = net.adjacency()
        assert adj[0, 1] and adj[1, 2]
        net.nodes[1].alive = False
        adj2 = net.adjacency()
        assert not adj2[0, 1] and not adj2[1, 2]

    def test_total_energy_sums_nodes(self):
        sim, net = make_network([[0, 0], [100, 0]])
        net.medium.broadcast(0, data_packet(0), tx_range=150.0)
        sim.run()
        assert net.total_energy() == pytest.approx(
            net.nodes[0].ledger.total + net.nodes[1].ledger.total
        )

    def test_position_cache_consistency(self):
        sim, net = make_network([[0, 0], [100, 0]])
        p1 = net.positions()
        p2 = net.positions()
        assert p1 is p2  # same timestamp -> cached array
