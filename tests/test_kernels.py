"""Kernel-layer selection and numpy-vs-numba bit-identity.

``repro.core.kernels`` promises that ``REPRO_KERNEL=numba`` changes how
fast the array engine runs and *nothing else*: every compiled kernel
mirrors its numpy counterpart expression for expression.  The properties
here pin that promise the same way the array engine pins its own
contract against the object engine — full-trajectory equality on
states/rounds/moves/evaluations, across every daemon and metric.

The numba half of the matrix runs only where numba is importable (the CI
kernels leg installs it); the selection/fallback machinery is testable
everywhere by forcing the availability probe.
"""

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DAEMON_NAMES,
    ArrayRoundEngine,
    NodeState,
    RoundEngine,
    arbitrary_states,
    fresh_states,
    kernels,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.core.metrics import METRIC_NAMES

from tests.test_array_engine import (
    assert_same_trajectory,
    random_connected_topology,
)

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAX_ROUNDS = 150

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)


@pytest.fixture(autouse=True)
def _restore_selection():
    """Leave the process-wide kernel selection as we found it."""
    before_active = kernels._active
    before_ok = kernels._numba_ok
    yield
    kernels._active = before_active
    kernels._numba_ok = before_ok


# ----------------------------------------------------------------------
# Selection and fallback
# ----------------------------------------------------------------------
class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        kernels._active = None
        assert kernels.active_kernel() == "numpy"
        assert not kernels.use_numba()

    def test_env_var_is_read_once(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        kernels._active = None
        assert kernels.active_kernel() == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.set_kernel("fortran")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "cuda")
        kernels._active = None
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.active_kernel()

    def test_numba_fallback_warns_and_resolves_numpy(self):
        """Requesting numba without numba must not fail the run — same
        command line, numpy kernels, one warning."""
        kernels._numba_ok = False  # force "not importable"
        with pytest.warns(RuntimeWarning, match="falling back"):
            resolved = kernels.set_kernel("numba")
        assert resolved == "numpy"
        assert kernels.active_kernel() == "numpy"

    @needs_numba
    def test_numba_selected_when_available(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no fallback warning expected
            assert kernels.set_kernel("numba") == "numba"
        assert kernels.use_numba()


# ----------------------------------------------------------------------
# The parity property: numba replays numpy exactly
# ----------------------------------------------------------------------
@needs_numba
@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000), metric_name=st.sampled_from(METRIC_NAMES))
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_numba_bit_identical_any_daemon(daemon, metric_name, seed):
    """Every daemon x every metric from arbitrary illegitimate states:
    the JIT kernels and the numpy formulations produce the same
    states/rounds/converged/cost_history/moves/evaluations."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))

    kernels.set_kernel("numpy")
    res_np = ArrayRoundEngine(
        topo, m, daemon=daemon, incremental=True,
        rng=np.random.default_rng(9),
    ).run(list(init), max_rounds=MAX_ROUNDS)

    kernels.set_kernel("numba")
    res_nb = ArrayRoundEngine(
        topo, m, daemon=daemon, incremental=True,
        rng=np.random.default_rng(9),
    ).run(list(init), max_rounds=MAX_ROUNDS)

    assert_same_trajectory(res_np, res_nb)


@needs_numba
def test_numba_bit_identical_moderate_scale():
    """One moderate sparse workload per metric under the synchronous
    daemon — large enough that every batched stage (commit, incremental
    snapshot, pair pricing, fold) actually runs under both kernels."""
    from repro.graph import SparseTopology

    sp = SparseTopology.random_geometric(400, side=600.0, radius=80.0, seed=2)
    daemon = "distributed"  # converges for E where sync may limit-cycle
    for name in METRIC_NAMES:
        m = metric_by_name(name, EXAMPLE_RADIO)
        runs = []
        for kernel in ("numpy", "numba"):
            kernels.set_kernel(kernel)
            runs.append(
                ArrayRoundEngine(
                    topo=sp, metric=m, daemon=daemon, incremental=True,
                    rng=np.random.default_rng(4), k=40,
                ).run(fresh_states(sp, m), max_rounds=400)
            )
        assert_same_trajectory(*runs)


@needs_numba
def test_count_within_kernel_matches_numpy():
    """Micro-parity for the in-range counting kernel: same counts as the
    numpy searchsorted formulation for every node and mixed radii."""
    from repro.core.array_engine import EdgeCsr

    topo = random_connected_topology(21, n_min=10, n_max=16)
    m = metric_by_name("energy", EXAMPLE_RADIO)
    csr = EdgeCsr(topo, m)
    rng = np.random.default_rng(1)
    U = rng.integers(0, topo.n, size=128).astype(np.int64)
    radii = np.ascontiguousarray(rng.uniform(0.0, 500.0, size=128))
    kernel = kernels.get("count_within")
    got = kernel(csr.indptr, csr.sdist, np.ascontiguousarray(U), radii)
    kernels.set_kernel("numpy")
    want = csr.count_within(U, radii)
    assert got.tolist() == want.tolist()


# ----------------------------------------------------------------------
# Scalar fallback: the energy batch gate
# ----------------------------------------------------------------------
class TestScalarFallback:
    """SS-SPST-E's batched evaluator refuses states its snapshot cannot
    price (parent cycles anywhere, a rooted source) and falls back to
    the scalar per-node path; the fallback must engage *and* stay
    bit-identical to the object engine."""

    def _run_pair(self, topo, m, init):
        obj = RoundEngine(
            topo, m, daemon="central", incremental=True,
            rng=np.random.default_rng(9),
        ).run(list(init), max_rounds=MAX_ROUNDS)
        arr_eng = ArrayRoundEngine(
            topo, m, daemon="central", incremental=True,
            rng=np.random.default_rng(9),
        )
        arr = arr_eng.run(list(init), max_rounds=MAX_ROUNDS)
        assert_same_trajectory(obj, arr)
        return arr_eng

    def test_parent_cycle_start(self):
        topo = random_connected_topology(31, n_min=8, n_max=12)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        init = list(fresh_states(topo, m))
        # a 2-cycle between two adjacent non-source nodes
        v = next(
            u for u in range(topo.n)
            if u != topo.source
            and any(w != topo.source for w in topo.neighbors(u))
        )
        w = next(u for u in topo.neighbors(v) if u != topo.source)
        init[v] = NodeState(parent=w, cost=1.0, hop=1)
        init[w] = NodeState(parent=v, cost=1.0, hop=1)
        eng = self._run_pair(topo, m, init)
        assert eng.profile["scalar_steps"] > 0

    def test_rooted_source_start(self):
        topo = random_connected_topology(32, n_min=8, n_max=12)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        init = list(fresh_states(topo, m))
        src = topo.source
        init[src] = NodeState(
            parent=topo.neighbors(src)[0], cost=2.5, hop=3
        )
        eng = self._run_pair(topo, m, init)
        assert eng.profile["scalar_steps"] > 0
