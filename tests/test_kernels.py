"""Kernel-layer selection and numpy-vs-numba bit-identity.

``repro.core.kernels`` promises that ``REPRO_KERNEL=numba`` changes how
fast the array engine runs and *nothing else*: every compiled kernel
mirrors its numpy counterpart expression for expression.  The properties
here pin that promise the same way the array engine pins its own
contract against the object engine — full-trajectory equality on
states/rounds/moves/evaluations, across every daemon and metric.

The numba half of the matrix runs only where numba is importable (the CI
kernels leg installs it); the selection/fallback machinery is testable
everywhere by forcing the availability probe.
"""

import warnings

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DAEMON_NAMES,
    ArrayRoundEngine,
    NodeState,
    RoundEngine,
    arbitrary_states,
    fresh_states,
    kernels,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.core.metrics import METRIC_NAMES

from tests.test_array_engine import (
    assert_same_trajectory,
    random_connected_topology,
)

SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAX_ROUNDS = 150

needs_numba = pytest.mark.skipif(
    not kernels.numba_available(), reason="numba not installed"
)


@pytest.fixture(autouse=True)
def _restore_selection():
    """Leave the process-wide kernel selection as we found it."""
    before_active = kernels._active
    before_ok = kernels._numba_ok
    yield
    kernels._active = before_active
    kernels._numba_ok = before_ok


# ----------------------------------------------------------------------
# Selection and fallback
# ----------------------------------------------------------------------
class TestSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(kernels.ENV_VAR, raising=False)
        kernels._active = None
        assert kernels.active_kernel() == "numpy"
        assert not kernels.use_numba()

    def test_env_var_is_read_once(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "numpy")
        kernels._active = None
        assert kernels.active_kernel() == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.set_kernel("fortran")

    def test_unknown_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv(kernels.ENV_VAR, "cuda")
        kernels._active = None
        with pytest.raises(ValueError, match="unknown kernel"):
            kernels.active_kernel()

    def test_numba_fallback_warns_and_resolves_numpy(self):
        """Requesting numba without numba must not fail the run — same
        command line, numpy kernels, one warning."""
        kernels._numba_ok = False  # force "not importable"
        with pytest.warns(RuntimeWarning, match="falling back"):
            resolved = kernels.set_kernel("numba")
        assert resolved == "numpy"
        assert kernels.active_kernel() == "numpy"

    @needs_numba
    def test_numba_selected_when_available(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no fallback warning expected
            assert kernels.set_kernel("numba") == "numba"
        assert kernels.use_numba()


# ----------------------------------------------------------------------
# The parity property: numba replays numpy exactly
# ----------------------------------------------------------------------
@needs_numba
@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000), metric_name=st.sampled_from(METRIC_NAMES))
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_numba_bit_identical_any_daemon(daemon, metric_name, seed):
    """Every daemon x every metric from arbitrary illegitimate states:
    the JIT kernels and the numpy formulations produce the same
    states/rounds/converged/cost_history/moves/evaluations."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))

    kernels.set_kernel("numpy")
    res_np = ArrayRoundEngine(
        topo, m, daemon=daemon, incremental=True,
        rng=np.random.default_rng(9),
    ).run(list(init), max_rounds=MAX_ROUNDS)

    kernels.set_kernel("numba")
    res_nb = ArrayRoundEngine(
        topo, m, daemon=daemon, incremental=True,
        rng=np.random.default_rng(9),
    ).run(list(init), max_rounds=MAX_ROUNDS)

    assert_same_trajectory(res_np, res_nb)


@needs_numba
def test_numba_bit_identical_moderate_scale():
    """One moderate sparse workload per metric under the synchronous
    daemon — large enough that every batched stage (commit, incremental
    snapshot, pair pricing, fold) actually runs under both kernels."""
    from repro.graph import SparseTopology

    sp = SparseTopology.random_geometric(400, side=600.0, radius=80.0, seed=2)
    daemon = "distributed"  # converges for E where sync may limit-cycle
    for name in METRIC_NAMES:
        m = metric_by_name(name, EXAMPLE_RADIO)
        runs = []
        for kernel in ("numpy", "numba"):
            kernels.set_kernel(kernel)
            runs.append(
                ArrayRoundEngine(
                    topo=sp, metric=m, daemon=daemon, incremental=True,
                    rng=np.random.default_rng(4), k=40,
                ).run(fresh_states(sp, m), max_rounds=400)
            )
        assert_same_trajectory(*runs)


@needs_numba
def test_count_within_kernel_matches_numpy():
    """Micro-parity for the in-range counting kernel: same counts as the
    numpy searchsorted formulation for every node and mixed radii."""
    from repro.core.array_engine import EdgeCsr

    topo = random_connected_topology(21, n_min=10, n_max=16)
    m = metric_by_name("energy", EXAMPLE_RADIO)
    csr = EdgeCsr(topo, m)
    rng = np.random.default_rng(1)
    U = rng.integers(0, topo.n, size=128).astype(np.int64)
    radii = np.ascontiguousarray(rng.uniform(0.0, 500.0, size=128))
    kernel = kernels.get("count_within")
    got = kernel(csr.indptr, csr.sdist, np.ascontiguousarray(U), radii)
    kernels.set_kernel("numpy")
    want = csr.count_within(U, radii)
    assert got.tolist() == want.tolist()


# ----------------------------------------------------------------------
# The twin contract: every compiled kernel has a same-signature numpy
# reference twin (NUMPY_TWINS), get() falls back to it without numba,
# and the two produce identical outputs on synthetic inputs.  The lint
# rules K401/K402 check the same contract statically.
# ----------------------------------------------------------------------
KERNEL_NAMES_ALL = ("count_within", "fold", "energy_pair_costs", "forest_scan")


def _csr_inputs(seed, n=7, per_row=9):
    """A synthetic distance-sorted CSR (indptr, sdist) over ``n`` rows."""
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, per_row, size=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(counts)
    sdist = np.concatenate(
        [np.sort(rng.uniform(0.0, 300.0, size=c)) for c in counts]
    ) if indptr[-1] else np.zeros(0, dtype=np.float64)
    return indptr, np.ascontiguousarray(sdist)


def _fold_inputs(seed, n_rows=6, per_row=5):
    rng = np.random.default_rng(seed)
    counts = rng.integers(0, per_row, size=n_rows).astype(np.int64)
    starts = np.zeros(n_rows, dtype=np.int64)
    starts[1:] = np.cumsum(counts)[:-1]
    total = int(counts.sum())
    eff = rng.uniform(-5.0, 5.0, size=total)
    eff[rng.random(total) < 0.15] = np.nan  # NaN band must propagate alike
    return (
        starts,
        counts,
        rng.random(total) < 0.8,                       # valid
        eff,
        rng.uniform(0.0, 10.0, size=total),            # oc
        rng.integers(0, 3, size=total).astype(np.int64),   # inc
        rng.integers(0, 6, size=total).astype(np.int64),   # hopU
        rng.uniform(0.0, 100.0, size=total),           # D
        rng.integers(0, 40, size=total).astype(np.int64),  # U
        1e-9,                                          # tol
    )


def _pair_cost_inputs(seed, n=7, pairs=24):
    rng = np.random.default_rng(seed)
    indptr, sdist = _csr_inputs(seed + 1, n=n)
    V = rng.integers(0, n, size=pairs).astype(np.int64)
    U = rng.integers(0, n, size=pairs).astype(np.int64)
    tin = rng.integers(0, 2 * n, size=n).astype(np.int64)
    return (
        V, U,
        rng.uniform(0.0, 200.0, size=pairs),           # D
        rng.uniform(0.0, 4.0, size=pairs),             # etx_d
        rng.random(n) < 0.5,                           # flags
        tin,
        tin + rng.integers(1, n, size=n),              # tout
        rng.uniform(0.0, 8.0, size=n),                 # Pd
        rng.uniform(0.0, 8.0, size=n),                 # Pc
        rng.uniform(0.0, 150.0, size=n),               # ft1
        rng.integers(-1, n, size=n).astype(np.int64),  # ft1c
        rng.uniform(0.0, 150.0, size=n),               # ft2
        rng.uniform(0.0, 3.0, size=n),                 # ft1e
        rng.uniform(0.0, 3.0, size=n),                 # ft2e
        indptr, sdist,
        0.05,                                          # e_rx
        np.inf,
    )


def _forest_inputs(seed, n=12):
    """A random forest as a child CSR plus roots/flags/costs."""
    rng = np.random.default_rng(seed)
    parent = np.full(n, -1, dtype=np.int64)
    for v in range(1, n):
        if rng.random() < 0.75:
            parent[v] = rng.integers(0, v)
    children = [[] for _ in range(n)]
    for v in range(n):
        if parent[v] >= 0:
            children[parent[v]].append(v)
    kcnt = np.array([len(c) for c in children], dtype=np.int64)
    kptr = np.zeros(n, dtype=np.int64)
    kptr[1:] = np.cumsum(kcnt)[:-1]
    kbuf = np.array(
        [c for cs in children for c in cs] or [0], dtype=np.int64
    )
    roots = np.flatnonzero(parent < 0).astype(np.int64)
    return (
        kptr, kcnt, kbuf, roots,
        np.int64(0),                                   # src
        rng.random(n) < 0.5,                           # flags
        rng.uniform(0.0, 5.0, size=n),                 # ML
        rng.uniform(0.0, 5.0, size=n),                 # costa
    )


def _count_within_inputs(seed):
    indptr, sdist = _csr_inputs(seed)
    rng = np.random.default_rng(seed + 2)
    U = rng.integers(0, indptr.size - 1, size=32).astype(np.int64)
    radii = np.ascontiguousarray(rng.uniform(0.0, 320.0, size=32))
    return indptr, sdist, U, radii


_TWIN_INPUTS = {
    "count_within": _count_within_inputs,
    "fold": _fold_inputs,
    "energy_pair_costs": _pair_cost_inputs,
    "forest_scan": _forest_inputs,
}


def _twin_inputs(name, seed):
    return _TWIN_INPUTS[name](seed)


def _as_lists(result):
    if isinstance(result, tuple):
        return [r.tolist() for r in result]
    return result.tolist()


class TestNumpyTwins:
    def test_every_kernel_has_same_signature_twin(self):
        """NUMPY_TWINS covers exactly the compiled-kernel names and each
        twin's parameter list matches (the runtime half of lint K401)."""
        import inspect

        assert set(kernels.NUMPY_TWINS) == set(KERNEL_NAMES_ALL)
        src = inspect.getsource(kernels._build)
        for name, twin in kernels.NUMPY_TWINS.items():
            assert twin.__name__ == f"numpy_{name}"
            twin_params = list(inspect.signature(twin).parameters)
            # the njit defs are nested in _build(); compare textually
            assert f"def {name}(" in src
            declared = src.split(f"def {name}(", 1)[1].split(")")[0]
            jit_params = [
                p.split(":")[0].strip()
                for p in declared.split(",")
                if p.strip()
            ]
            assert jit_params == twin_params, (
                f"twin numpy_{name} signature drifted from the @njit kernel"
            )

    def test_get_falls_back_to_twins_without_numba(self):
        """get() must work on machines without numba, returning the
        numpy twin for every kernel name."""
        kernels._numba_ok = False  # force "not importable"
        for name in KERNEL_NAMES_ALL:
            assert kernels.get(name) is kernels.NUMPY_TWINS[name]
        with pytest.raises(KeyError, match="unknown kernel"):
            kernels.get("transmogrify")

    @pytest.mark.parametrize("name", KERNEL_NAMES_ALL)
    def test_twins_run_on_synthetic_inputs(self, name):
        """Each twin executes and returns well-formed arrays (smoke —
        the bit-identity against numba is pinned below and by the
        trajectory properties above)."""
        out = _as_lists(kernels.NUMPY_TWINS[name](*_twin_inputs(name, 5)))
        assert out == _as_lists(
            kernels.NUMPY_TWINS[name](*_twin_inputs(name, 5))
        )

    @needs_numba
    @pytest.mark.parametrize("name", KERNEL_NAMES_ALL)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_twin_micro_parity(self, name, seed):
        """The compiled kernel and its numpy twin agree element-for-
        element on randomized synthetic inputs — including NaN bands
        ('fold') and bisection keys ('count_within',
        'energy_pair_costs') — so 'forest_scan' and friends stay
        drop-in interchangeable."""
        kernels.set_kernel("numba")
        args = _twin_inputs(name, seed)
        got = _as_lists(kernels.get(name)(*args))
        want = _as_lists(kernels.NUMPY_TWINS[name](*args))
        # exact comparison, NaNs included
        assert repr(got) == repr(want)


# ----------------------------------------------------------------------
# Scalar fallback: the energy batch gate
# ----------------------------------------------------------------------
class TestScalarFallback:
    """SS-SPST-E's batched evaluator refuses states its snapshot cannot
    price (parent cycles anywhere, a rooted source) and falls back to
    the scalar per-node path; the fallback must engage *and* stay
    bit-identical to the object engine."""

    def _run_pair(self, topo, m, init):
        obj = RoundEngine(
            topo, m, daemon="central", incremental=True,
            rng=np.random.default_rng(9),
        ).run(list(init), max_rounds=MAX_ROUNDS)
        arr_eng = ArrayRoundEngine(
            topo, m, daemon="central", incremental=True,
            rng=np.random.default_rng(9),
        )
        arr = arr_eng.run(list(init), max_rounds=MAX_ROUNDS)
        assert_same_trajectory(obj, arr)
        return arr_eng

    def test_parent_cycle_start(self):
        topo = random_connected_topology(31, n_min=8, n_max=12)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        init = list(fresh_states(topo, m))
        # a 2-cycle between two adjacent non-source nodes
        v = next(
            u for u in range(topo.n)
            if u != topo.source
            and any(w != topo.source for w in topo.neighbors(u))
        )
        w = next(u for u in topo.neighbors(v) if u != topo.source)
        init[v] = NodeState(parent=w, cost=1.0, hop=1)
        init[w] = NodeState(parent=v, cost=1.0, hop=1)
        eng = self._run_pair(topo, m, init)
        assert eng.profile["scalar_steps"] > 0

    def test_rooted_source_start(self):
        topo = random_connected_topology(32, n_min=8, n_max=12)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        init = list(fresh_states(topo, m))
        src = topo.source
        init[src] = NodeState(
            parent=topo.neighbors(src)[0], cost=2.5, hop=3
        )
        eng = self._run_pair(topo, m, init)
        assert eng.profile["scalar_steps"] > 0
