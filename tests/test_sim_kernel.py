"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


class TestScheduling:
    def test_simple_order(self, sim):
        log = []
        sim.schedule(2.0, lambda: log.append("b"))
        sim.schedule(1.0, lambda: log.append("a"))
        sim.schedule(3.0, lambda: log.append("c"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_fifo_ties(self, sim):
        log = []
        for i in range(10):
            sim.schedule(1.0, log.append, i)
        sim.run()
        assert log == list(range(10))

    def test_priority_breaks_ties(self, sim):
        log = []
        sim.schedule(1.0, log.append, "low", priority=5)
        sim.schedule(1.0, log.append, "high", priority=-5)
        sim.run()
        assert log == ["high", "low"]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_args_passed(self, sim):
        out = []
        sim.schedule(0.0, lambda a, b: out.append(a + b), 2, 3)
        sim.run()
        assert out == [5]


class TestClock:
    def test_now_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(4.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.5]
        assert sim.now == 4.5

    def test_run_until_inclusive(self, sim):
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(2.0, log.append, 2)
        sim.schedule(2.0001, log.append, 3)
        sim.run(until=2.0)
        assert log == [1, 2]
        assert sim.now == 2.0

    def test_run_until_advances_clock_without_events(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_events_scheduled_during_run(self, sim):
        log = []

        def chain(k):
            log.append(k)
            if k < 3:
                sim.schedule(1.0, chain, k + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert log == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestCancellation:
    def test_cancelled_event_skipped(self, sim):
        log = []
        ev = sim.schedule(1.0, log.append, "x")
        sim.schedule(2.0, log.append, "y")
        ev.cancel()
        sim.run()
        assert log == ["y"]

    def test_pending_counts_only_live(self, sim):
        ev1 = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending == 2
        ev1.cancel()
        assert sim.pending == 1


class TestRunControl:
    def test_stop(self, sim):
        log = []
        sim.schedule(1.0, lambda: (log.append(1), sim.stop()))
        sim.schedule(2.0, log.append, 2)
        sim.run()
        assert log[0] == 1 and 2 not in log

    def test_step(self, sim):
        log = []
        sim.schedule(1.0, log.append, 1)
        sim.schedule(2.0, log.append, 2)
        assert sim.step() is True
        assert log == [1]
        assert sim.step() is True
        assert sim.step() is False

    def test_max_events(self, sim):
        log = []
        for i in range(10):
            sim.schedule(float(i), log.append, i)
        sim.run(max_events=4)
        assert log == [0, 1, 2, 3]

    def test_nested_run_rejected(self, sim):
        def inner():
            sim.run()

        sim.schedule(1.0, inner)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_executed_counter(self, sim):
        for i in range(7):
            sim.schedule(float(i), lambda: None)
        sim.run()
        assert sim.events_executed == 7

    def test_peek(self, sim):
        assert sim.peek() is None
        sim.schedule(3.0, lambda: None)
        assert sim.peek() == 3.0
