"""Tests for the update rule, executors, legitimacy and lemma checkers."""

import numpy as np
import pytest

from repro.core import (
    CentralDaemonExecutor,
    GlobalView,
    NodeState,
    RandomizedDaemonExecutor,
    SyncExecutor,
    arbitrary_states,
    check_closure,
    check_convergence,
    check_loop_freedom,
    compute_update,
    extract_tree,
    fresh_states,
    guard_violated,
    is_legitimate,
    metric_by_name,
)
from repro.core.convergence import cost_monotone_after_join
from repro.core.examples import EXAMPLE_RADIO, figure1_topology
from repro.core.metrics import METRIC_NAMES
from repro.graph import Topology


@pytest.fixture
def topo():
    return figure1_topology()


def line(n, spacing=100.0, members=None):
    edges = {(i, i + 1): spacing for i in range(n - 1)}
    return Topology.from_edges(
        n, edges, source=0, members=members if members is not None else range(n)
    )


class TestRule:
    def test_root_state_constant(self, topo):
        m = metric_by_name("hop", EXAMPLE_RADIO)
        states = arbitrary_states(topo, m, np.random.default_rng(0))
        view = GlobalView(topo, states)
        assert compute_update(topo, m, view, topo.source) == NodeState(None, 0.0, 0)

    def test_disconnected_when_no_candidates(self):
        t = line(3)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        # Everyone disconnected: node 2's only neighbor (1) has hop == H_max.
        states = fresh_states(t, m)
        view = GlobalView(t, states)
        ns = compute_update(t, m, view, 2)
        assert ns.parent is None
        assert ns.cost == m.infinity(t)
        assert ns.hop == t.n

    def test_joins_root_neighbor_first(self):
        t = line(3)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        view = GlobalView(t, fresh_states(t, m))
        ns = compute_update(t, m, view, 1)
        assert ns.parent == 0 and ns.hop == 1 and ns.cost == 1.0

    def test_incumbent_preferred_on_tie(self):
        """Two equidistant parents: the current one wins (hysteresis)."""
        edges = {(0, 1): 100.0, (0, 2): 100.0, (1, 3): 80.0, (2, 3): 80.0}
        t = Topology.from_edges(4, edges, source=0, members=range(4))
        m = metric_by_name("hop", EXAMPLE_RADIO)
        states = [
            NodeState(None, 0.0, 0),
            NodeState(0, 1.0, 1),
            NodeState(0, 1.0, 1),
            NodeState(2, 2.0, 2),  # currently on the higher-id parent
        ]
        view = GlobalView(t, states)
        assert compute_update(t, m, view, 3).parent == 2

    def test_guard_violated(self, topo):
        m = metric_by_name("hop", EXAMPLE_RADIO)
        states = fresh_states(topo, m)
        view = GlobalView(topo, states)
        assert guard_violated(topo, m, view, 1)  # should join the root
        assert not guard_violated(topo, m, view, topo.source)


class TestExecutors:
    @pytest.mark.parametrize("name", ["hop", "tx"])
    @pytest.mark.parametrize("executor_cls", [SyncExecutor, CentralDaemonExecutor])
    def test_convergence_fresh(self, topo, name, executor_cls):
        m = metric_by_name(name, EXAMPLE_RADIO)
        res = executor_cls(topo, m).run(fresh_states(topo, m))
        assert res.converged
        assert is_legitimate(topo, m, res.states)
        assert res.tree(topo).spans_all()

    def test_sync_hop_stabilizes_level_by_level(self):
        """On a line of n nodes, sync hop stabilization takes n-1 rounds
        (the paper: 'first round stabilizes the root followed by
        consecutive levels in the next rounds')."""
        for n in (3, 5, 8):
            t = line(n)
            m = metric_by_name("hop", EXAMPLE_RADIO)
            res = SyncExecutor(t, m).run(fresh_states(t, m))
            assert res.converged
            assert res.rounds == n - 1

    def test_moves_counted(self, topo):
        m = metric_by_name("hop", EXAMPLE_RADIO)
        res = SyncExecutor(topo, m).run(fresh_states(topo, m))
        assert res.moves >= topo.n - 1  # every non-root moved at least once

    def test_disconnected_component_goes_to_infinity(self):
        t = Topology.from_edges(4, {(0, 1): 50.0, (2, 3): 50.0}, source=0, members=[1, 3])
        m = metric_by_name("hop", EXAMPLE_RADIO)
        res = CentralDaemonExecutor(t, m).run(fresh_states(t, m))
        assert res.converged
        assert res.states[1].parent == 0
        assert res.states[2].parent is None and res.states[2].cost == m.infinity(t)
        assert res.states[3].parent is None

    def test_randomized_daemon_deterministic_given_rng(self, topo):
        m = metric_by_name("energy", EXAMPLE_RADIO)
        r1 = RandomizedDaemonExecutor(topo, m, np.random.default_rng(5)).run(
            fresh_states(topo, m)
        )
        r2 = RandomizedDaemonExecutor(topo, m, np.random.default_rng(5)).run(
            fresh_states(topo, m)
        )
        assert [s.parent for s in r1.states] == [s.parent for s in r2.states]


class TestLemmas:
    @pytest.mark.parametrize("name", METRIC_NAMES)
    def test_lemma1_convergence_fresh(self, topo, name):
        m = metric_by_name(name, EXAMPLE_RADIO)
        executor = RandomizedDaemonExecutor(topo, m, np.random.default_rng(1))
        report = check_convergence(topo, m, executor, fresh_states(topo, m))
        assert report.holds, report.detail

    @pytest.mark.parametrize("name", METRIC_NAMES)
    def test_lemma2_closure(self, topo, name):
        m = metric_by_name(name, EXAMPLE_RADIO)
        executor = CentralDaemonExecutor(topo, m)
        res = RandomizedDaemonExecutor(topo, m, np.random.default_rng(2)).run(
            fresh_states(topo, m)
        )
        assert res.converged
        report = check_closure(topo, m, executor, res.states)
        assert report.holds, report.detail

    @pytest.mark.parametrize("name", METRIC_NAMES)
    def test_lemma3_loop_freedom(self, topo, name):
        m = metric_by_name(name, EXAMPLE_RADIO)
        res = RandomizedDaemonExecutor(topo, m, np.random.default_rng(3)).run(
            fresh_states(topo, m)
        )
        report = check_loop_freedom(topo, res.states)
        assert report.holds, report.detail

    def test_lemma1_from_arbitrary_state_with_cycle(self, topo):
        """Plant a parent cycle; the hop ceiling must break it (Lemma 3)."""
        m = metric_by_name("hop", EXAMPLE_RADIO)
        states = fresh_states(topo, m)
        # Cycle: 4 -> 3 -> 7 -> 4 with bogus finite costs and small hops.
        states[4] = NodeState(3, 2.0, 2)
        states[3] = NodeState(7, 2.0, 2)
        states[7] = NodeState(4, 2.0, 2)
        executor = CentralDaemonExecutor(topo, m)
        res = executor.run(states)
        assert res.converged
        assert extract_tree(topo, res.states) is not None
        assert is_legitimate(topo, m, res.states)

    def test_cost_monotone_for_hop(self, topo):
        m = metric_by_name("hop", EXAMPLE_RADIO)
        res = SyncExecutor(topo, m).run(fresh_states(topo, m))
        assert cost_monotone_after_join(res)

    def test_closure_rejects_illegitimate_input(self, topo):
        m = metric_by_name("hop", EXAMPLE_RADIO)
        report = check_closure(topo, m, CentralDaemonExecutor(topo, m), fresh_states(topo, m))
        assert not report.holds
