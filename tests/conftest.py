"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.energy.radio import FirstOrderRadioModel
from repro.sim.kernel import Simulator
from repro.util.geometry import Arena
from repro.util.rng import RngStreams


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def arena() -> Arena:
    return Arena(750.0, 750.0)


@pytest.fixture
def radio() -> FirstOrderRadioModel:
    return FirstOrderRadioModel()


@pytest.fixture
def example_radio() -> FirstOrderRadioModel:
    """The radio used by the worked examples (higher reception cost)."""
    from repro.core.examples import EXAMPLE_RADIO

    return EXAMPLE_RADIO


@pytest.fixture
def streams() -> RngStreams:
    return RngStreams(12345)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(987654321)


@pytest.fixture
def test_daemon() -> str:
    """Default activation daemon for daemon-generic tests.

    CI matrixes the tier-1 job over ``REPRO_TEST_DAEMON={central,
    randomized}`` so both disciplines stay exercised by default-path
    tests; any registry name works locally.
    """
    return os.environ.get("REPRO_TEST_DAEMON", "central")


@pytest.fixture
def test_backend() -> str:
    """Default experiment backend for backend-generic tests.

    The CI rounds leg sets ``REPRO_TEST_BACKEND=rounds`` so the campaign
    CLI smoke exercises the round-model executor end to end; the default
    keeps the historical DES path.
    """
    return os.environ.get("REPRO_TEST_BACKEND", "des")


@pytest.fixture
def test_engine() -> str:
    """Default round-engine implementation for engine-generic tests.

    CI adds a ``REPRO_TEST_ENGINE=array`` tier-1 matrix entry so the
    vectorized columnar engine runs the same default-path tests as the
    scalar reference (their trajectories are bit-identical by contract,
    so the tests themselves need no engine awareness); the default keeps
    the object engine.
    """
    return os.environ.get("REPRO_TEST_ENGINE", "object")


@pytest.fixture
def test_store(tmp_path) -> str:
    """A fresh result-store spec for store-generic tests.

    The CI store leg sets ``REPRO_TEST_STORE=sqlite`` so the campaign /
    backend / scenario-model tests persist through the SQLite columnar
    store instead of the JSON record dir; the default keeps the
    historical ``--cache-dir`` layout.  Both resolve through
    :func:`repro.experiments.store.open_store`.
    """
    if os.environ.get("REPRO_TEST_STORE", "json") == "sqlite":
        return f"sqlite:{tmp_path / 'results.sqlite'}"
    return str(tmp_path / "result-cache")


@pytest.fixture
def test_mobility() -> str:
    """Default mobility model for scenario-generic tests.

    The CI scenario-models leg sets ``REPRO_TEST_MOBILITY=gauss-markov``
    so a non-default mobility model runs through the full runner /
    backend / campaign stack on every push; the default keeps the
    paper's random-waypoint path.  ``trace`` is not a valid value here
    (it needs a scenario file).
    """
    return os.environ.get("REPRO_TEST_MOBILITY", "waypoint")
