"""Tests for round-model fault injection."""

import numpy as np
import pytest

from repro.core import (
    CentralDaemonExecutor,
    fresh_states,
    is_legitimate,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO, figure1_topology
from repro.core.faults import EdgeFault, NodeCrash, run_with_faults


@pytest.fixture
def topo():
    return figure1_topology()


def hop_executor_factory(topo):
    m = metric_by_name("hop", EXAMPLE_RADIO)
    return CentralDaemonExecutor(topo, m)


class TestEdgeFault:
    def test_removal(self, topo):
        t2 = EdgeFault(0, 3).apply(topo)
        assert not t2.has_edge(0, 3)
        assert topo.has_edge(0, 3)  # original untouched

    def test_addition(self, topo):
        t2 = EdgeFault(1, 7, add=True, distance=90.0).apply(topo)
        assert t2.has_edge(1, 7)
        assert t2.dist[1, 7] == 90.0

    def test_addition_requires_distance(self, topo):
        with pytest.raises(ValueError):
            EdgeFault(1, 7, add=True).apply(topo)


class TestNodeCrash:
    def test_crash_isolates_node(self, topo):
        t2 = NodeCrash(4).apply(topo)
        assert t2.degree(4) == 0
        # Nodes 8, 9 only connected through 4: now unreachable.
        assert not t2.is_connected()

    def test_source_crash_rejected(self, topo):
        with pytest.raises(ValueError):
            NodeCrash(topo.source).apply(topo)


class TestRunWithFaults:
    def test_recovers_from_edge_removal(self, topo):
        m = metric_by_name("hop", EXAMPLE_RADIO)
        result = run_with_faults(
            topo,
            hop_executor_factory,
            fresh_states(topo, m),
            faults=[EdgeFault(0, 3)],  # node 3 loses its direct link
        )
        assert result.all_converged
        rec = result.recoveries[0]
        assert rec.rounds_to_restabilize >= 1  # 3 must re-route (via 7 or 4)
        assert is_legitimate(result.final_topology, m, result.final_states)

    def test_multiple_sequential_faults(self, topo):
        m = metric_by_name("hop", EXAMPLE_RADIO)
        result = run_with_faults(
            topo,
            hop_executor_factory,
            fresh_states(topo, m),
            faults=[EdgeFault(0, 3), EdgeFault(7, 3), NodeCrash(4)],
        )
        assert result.all_converged
        assert len(result.recoveries) == 3
        # After crashing node 4, members 8/9-side topology is partitioned;
        # node 3 lost every path shown and must sit at OC_max or re-route
        # through 6 — either way the state is legitimate for the topology.
        assert is_legitimate(result.final_topology, m, result.final_states)

    def test_edge_addition_can_improve_tree(self, topo):
        """Closure is about faults; an *improvement* opportunity (new
        short edge to the source) must also be adopted."""
        m = metric_by_name("tx", EXAMPLE_RADIO)

        def factory(t):
            return CentralDaemonExecutor(t, m)

        result = run_with_faults(
            topo,
            factory,
            fresh_states(topo, m),
            faults=[EdgeFault(0, 4, add=True, distance=40.0)],
        )
        assert result.all_converged
        # Node 4 now adopts the source directly (40 m beats any relay).
        assert result.final_states[4].parent == 0

    def test_no_faults_is_plain_stabilization(self, topo):
        m = metric_by_name("hop", EXAMPLE_RADIO)
        result = run_with_faults(
            topo, hop_executor_factory, fresh_states(topo, m), faults=[]
        )
        # The central daemon propagates within a round (id order), so it
        # needs fewer rounds than the synchronous executor's 3.
        assert 1 <= result.initial_rounds <= 3
        assert result.recoveries == []
        assert result.max_recovery_rounds == 0
