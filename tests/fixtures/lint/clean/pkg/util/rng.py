import numpy as np


class RngStreams:
    def __init__(self, root_seed):
        self.root_seed = root_seed

    def get(self, name):
        return np.random.default_rng(hash((self.root_seed, name)) & 0xFFFF)

    def derive(self, label, *parts):
        return self.get(".".join((label, *(str(p) for p in parts))))
