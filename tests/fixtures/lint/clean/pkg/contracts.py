REGISTRY_AXES = {
    "gadget": {
        "module": "core/gadgets.py",
        "symbol": "GADGET_NAMES",
        "lookup": "gadget_by_name",
        "names": ("alpha-router",),
    },
}
