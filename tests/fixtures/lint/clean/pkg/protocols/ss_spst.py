from dataclasses import dataclass


@dataclass(frozen=True)
class SSSPSTConfig:
    beacon_interval: float = 1.0
    jitter: float = 0.1


CAMPAIGN_BINDINGS = {
    "beacon_interval": "config:seed",
    "jitter": "fixed",
}
