CORE_HASH_FIELDS = ("n_nodes", "seed")

_HASH_NEUTRAL_DEFAULTS = {"backend": "des"}
