from pkg.core.gadgets import gadget_by_name


def run(name):
    return gadget_by_name(name)
