from dataclasses import dataclass


@dataclass(frozen=True)
class ScenarioConfig:
    n_nodes: int
    seed: int = 0
    backend: str = "des"
