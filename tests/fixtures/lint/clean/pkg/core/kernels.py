import os

import numpy as np

_compiled = {}

ENV_VAR = "FIXTURE_KERNEL"  # env reads are sanctioned in core/kernels.py
_selected = os.environ.get(ENV_VAR, "numpy")


def numpy_widget(values, scale):
    return values * scale


NUMPY_TWINS = {"widget": numpy_widget}


def _build():
    def widget(values, scale):
        out = np.empty_like(values)
        for i in range(values.size):
            out[i] = values[i] * scale
        return out

    _compiled["widget"] = widget
