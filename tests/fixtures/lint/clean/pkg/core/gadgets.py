GADGET_NAMES = ("alpha-router",)


def gadget_by_name(name):
    if name not in GADGET_NAMES:
        raise ValueError(name)
    return name
