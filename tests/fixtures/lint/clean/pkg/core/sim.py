"""Deterministic-core idioms that must stay legal (no D1xx findings)."""

import time

import numpy as np

from pkg.util.rng import RngStreams


def profiled_step(streams: RngStreams, members: set) -> list:
    start = time.perf_counter()  # profiling clocks are allowed
    rng = streams.derive("step", 3)  # sanctioned label composition
    seeded = np.random.default_rng(42)  # explicit seed is fine
    order = sorted(members)  # sorted() launders set order
    count = len({m for m in members if m > 0})  # set->set is order-free
    _ = (rng, seeded, start, count)
    return order
