# Fixture "tests" corpus (data, not collected by pytest): quoted
# registry and kernel names satisfy rules R303 and K402.

REGISTRY_REFS = ("alpha-router",)
KERNEL_REFS = ("widget",)
