# Fixture "tests" corpus: deliberately references no registry or
# kernel names, so R303 and K402 fire.
NOTHING = ()
