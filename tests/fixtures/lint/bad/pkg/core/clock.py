"""One violation per determinism rule, plus one inline suppression."""

import datetime
import os
import random
import time

import numpy as np

from pkg.util.rng import derive_seed


def wall_clock():
    stamp = time.time()  # D101
    today = datetime.datetime.now()  # D101
    okay = time.perf_counter()  # allowed: profiling clock
    return stamp, today, okay


def suppressed_clock():
    return time.time()  # lint: ignore[D101] fixture: suppression must hold


def entropy():
    a = random.random()  # D102
    b = np.random.rand(3)  # D102 (legacy module-level API)
    c = np.random.default_rng()  # D102 (no seed)
    d = np.random.default_rng(7)  # allowed: explicit seed
    return a, b, c, d


def environment():
    mode = os.environ["FIXTURE_MODE"]  # D103
    alt = os.getenv("FIXTURE_ALT")  # D103
    return mode, alt


def set_order(streams, node_id):
    members = set([3, 1, 2])
    order = list(members)  # D104
    out = []
    for m in members:  # D104 (body appends)
        out.append(m)
    squares = [m * m for m in members]  # D104 (list comprehension)
    rng = streams.get(f"mac.{node_id}")  # D105
    seed = derive_seed(node_id + 1, "mac")  # D105 (seed arithmetic)
    return order, out, squares, rng, seed
