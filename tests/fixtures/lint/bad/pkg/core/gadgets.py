GADGET_NAMES = ("undocumented-thing",)


def gadget_by_name(name):
    return name
