def half_finished(:  # E901: deliberate syntax error
