import numpy as np

_compiled = {}


def numpy_rotor(values):  # K401: signature drifted from the jit kernel
    return values * 2.0


NUMPY_TWINS = {"rotor": numpy_rotor}


def _build():
    def maglev(values, scale):  # K401: no NUMPY_TWINS entry; K402: untested
        out = np.empty_like(values)
        for i in range(values.size):
            out[i] = values[i] * scale
        return out

    def rotor(values, scale):
        return values * scale

    _compiled["maglev"] = maglev
    _compiled["rotor"] = rotor
