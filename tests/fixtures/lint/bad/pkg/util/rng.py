def derive_seed(root_seed, name):
    return (root_seed * 31 + len(name)) & 0xFFFF
