REGISTRY_AXES = {
    "daemon": {
        "module": "core/daemons.py",  # R301: module does not exist
        "symbol": "DAEMON_NAMES",
        "lookup": "daemon_by_name",
        "names": (),
    },
    "gadget": {
        "module": "core/gadgets.py",
        "symbol": "GADGET_NAMES",
        "lookup": "gadget_by_name",  # R304: unreachable from experiments/
        "names": ("undocumented-thing",),  # R302 + R303
    },
}
