from dataclasses import dataclass


@dataclass(frozen=True)
class SSSPSTConfig:
    beacon_interval: float = 1.0
    jitter: float = 0.1  # H204: no CAMPAIGN_BINDINGS entry
    miss_factor: float = 3.0
    hold_down: int = 2


CAMPAIGN_BINDINGS = {
    "beacon_interval": "config:beacon_rate",  # H204: no such config field
    "miss_factor": "sometimes",  # H204: not config:/derived:/fixed
    "hold_down": "fixed",
    "phantom": "fixed",  # H204: not an SSSPSTConfig field
}
