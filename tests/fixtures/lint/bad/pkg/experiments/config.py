from dataclasses import dataclass


@dataclass(frozen=True)
class ScenarioConfig:
    n_nodes: int
    seed: int = 0
    shiny: float = 1.0  # H201: in neither hash table
    backend: str = "rounds"  # H202: neutral table declares 'des'
