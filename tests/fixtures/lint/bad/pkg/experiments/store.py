CORE_HASH_FIELDS = ("n_nodes", "seed", "ghost")  # H203: 'ghost' is stale

_HASH_NEUTRAL_DEFAULTS = {
    "backend": "des",  # H202: dataclass default is 'rounds'
    "seed": 0,  # H203: also in CORE_HASH_FIELDS
}
