"""Tests for the BIP/MIP reference constructions and E_min search."""

import numpy as np
import pytest

from repro.core.examples import EXAMPLE_RADIO, figure1_topology
from repro.core.metrics import EnergyAwareMetric, TxEnergyMetric, metric_by_name
from repro.graph import (
    Topology,
    bip_tree,
    exhaustive_min_energy_tree,
    local_search_min_energy_tree,
    mip_tree,
)


@pytest.fixture
def topo():
    return figure1_topology()


class TestBip:
    def test_spans_connected_graph(self, topo):
        tree = bip_tree(topo, EXAMPLE_RADIO)
        assert tree.spans_all()

    def test_respects_topology_edges(self, topo):
        tree = bip_tree(topo, EXAMPLE_RADIO)
        for p, v in tree.edges():
            assert topo.has_edge(p, v)

    def test_incremental_power_greedy(self):
        """On a line, BIP must chain rather than stretch the root."""
        edges = {(0, 1): 100.0, (1, 2): 100.0, (0, 2): 200.0}
        topo = Topology.from_edges(3, edges, source=0, members=[2])
        tree = bip_tree(topo, EXAMPLE_RADIO)
        assert tree.parents[2] == 1  # relaying beats the long direct edge

    def test_disconnected_graph_partial(self):
        topo = Topology.from_edges(3, {(0, 1): 50.0}, source=0, members=[1])
        tree = bip_tree(topo, EXAMPLE_RADIO)
        assert tree.parents[1] == 0
        assert tree.parents[2] is None


class TestMip:
    def test_prunes_memberless_branches(self):
        edges = {(0, 1): 100.0, (1, 2): 80.0, (0, 3): 50.0, (3, 4): 120.0}
        topo = Topology.from_edges(5, edges, source=0, members=[2])
        tree = mip_tree(topo, EXAMPLE_RADIO)
        # The 3-4 branch holds no member: dropped from the data tree.
        assert tree.parents[3] is None or not tree.flags()[3]

    def test_members_stay_connected(self, topo):
        tree = mip_tree(topo, EXAMPLE_RADIO)
        assert tree.spans_members()


class TestEminSearch:
    def test_exhaustive_beats_or_matches_everything(self):
        """The exhaustive optimum is a lower bound for any other tree."""
        edges = {
            (0, 1): 100.0,
            (1, 2): 80.0,
            (0, 2): 150.0,
            (2, 3): 90.0,
            (1, 3): 140.0,
        }
        topo = Topology.from_edges(4, edges, source=0, members=[0, 3])
        metric = metric_by_name("energy", EXAMPLE_RADIO)
        _, best_cost = exhaustive_min_energy_tree(topo, metric)
        ls_tree, ls_cost = local_search_min_energy_tree(topo, metric)
        assert best_cost <= ls_cost + 1e-15

    def test_exhaustive_on_figure1(self, topo):
        metric = metric_by_name("energy", EXAMPLE_RADIO)
        tree, cost = exhaustive_min_energy_tree(topo, metric)
        assert tree.spans_all()
        assert cost > 0

    def test_local_search_improves_start(self, topo):
        metric = metric_by_name("energy", EXAMPLE_RADIO)
        from repro.graph.tree import TreeAssignment

        # Start from the hop/BFS tree local_search builds by default.
        tree, cost = local_search_min_energy_tree(topo, metric)
        assert tree.spans_all()
        # Must not be worse than the default start itself.
        start, start_cost = local_search_min_energy_tree(topo, metric, max_iters=0)
        assert cost <= start_cost + 1e-15

    def test_rejects_disconnected(self):
        topo = Topology.from_edges(3, {(0, 1): 10.0}, source=0, members=[1])
        metric = metric_by_name("tx", EXAMPLE_RADIO)
        with pytest.raises(ValueError):
            exhaustive_min_energy_tree(topo, metric)
