"""Tests for mobility analysis (link churn, partitions)."""

import numpy as np
import pytest

from repro.mobility import RandomWaypoint, StaticPlacement, TraceMobility
from repro.mobility.analysis import LinkChurnStats, link_churn, partition_fraction
from repro.util.geometry import Arena

ARENA = Arena(500.0, 500.0)


class TestLinkChurn:
    def test_static_network_has_no_churn(self, rng):
        mob = StaticPlacement(20, ARENA, rng=rng)
        stats = link_churn(mob, max_range=200.0, duration=30.0, dt=1.0)
        assert stats.link_breaks == 0
        assert stats.link_births == 0
        assert stats.break_rate == 0.0

    def test_mobile_network_churns(self, rng):
        mob = RandomWaypoint(20, ARENA, v_min=5.0, v_max=20.0, rng=rng)
        stats = link_churn(mob, max_range=150.0, duration=60.0, dt=1.0)
        assert stats.link_breaks > 0
        assert stats.link_births > 0

    def test_fault_rate_grows_with_speed(self):
        """The causal link the paper asserts: faster nodes, more faults."""
        rates = []
        for vmax in (2.0, 20.0):
            mob = RandomWaypoint(
                25, ARENA, v_min=1.0, v_max=vmax, rng=np.random.default_rng(5)
            )
            rates.append(
                link_churn(mob, max_range=150.0, duration=120.0, dt=1.0).break_rate
            )
        assert rates[1] > rates[0] * 1.5

    def test_engineered_break(self):
        """One node walks away: exactly one link breaks, none are born."""
        traces = [
            [(0.0, 100.0, 100.0)],
            [(0.0, 150.0, 100.0), (5.0, 150.0, 100.0), (10.0, 480.0, 480.0)],
        ]
        mob = TraceMobility(ARENA, traces)
        stats = link_churn(mob, max_range=100.0, duration=15.0, dt=1.0)
        assert stats.link_breaks == 1
        assert stats.link_births == 0

    def test_validation(self, rng):
        mob = StaticPlacement(5, ARENA, rng=rng)
        with pytest.raises(ValueError):
            link_churn(mob, 100.0, duration=0.0)

    def test_mean_degree_sane(self, rng):
        mob = StaticPlacement(30, ARENA, rng=rng)
        stats = link_churn(mob, max_range=250.0, duration=5.0, dt=1.0)
        assert 0.0 < stats.mean_degree < 29.0


class TestPartitionFraction:
    def test_connected_clique_never_partitions(self, rng):
        mob = StaticPlacement(10, Arena(100.0, 100.0), rng=rng)
        assert partition_fraction(mob, max_range=200.0, duration=10.0) == 0.0

    def test_sparse_network_partitions(self, rng):
        mob = StaticPlacement(4, ARENA, rng=rng)
        frac = partition_fraction(mob, max_range=30.0, duration=5.0)
        assert frac == 1.0  # 4 nodes, 30 m range in 500 m arena: no chance
