"""Reproduction tests for the paper's worked examples (Figures 1-6).

The exactly derivable facts (hop and T trees, round ordering, Figure-5
steering, cost dominance of the E tree) are asserted; EXPERIMENTS.md
documents why the F/E example trees of Figures 4/6 are validated through
their qualitative claims rather than an edge-for-edge match.
"""

import pytest

from repro.core import (
    SyncExecutor,
    fresh_states,
    is_legitimate,
    metric_by_name,
)
from repro.core.examples import (
    EXAMPLE_RADIO,
    FIGURE1_EDGES,
    FIGURE1_MEMBERS,
    FIGURE2_HOP_PARENTS,
    FIGURE3_TX_PARENTS,
    figure1_topology,
    figure5_topology,
)
from repro.core.metrics import METRIC_NAMES, EnergyAwareMetric


@pytest.fixture(scope="module")
def topo():
    return figure1_topology()


@pytest.fixture(scope="module")
def results(topo):
    out = {}
    for name in METRIC_NAMES:
        m = metric_by_name(name, EXAMPLE_RADIO)
        res = SyncExecutor(topo, m).run(fresh_states(topo, m))
        out[name] = (m, res)
    return out


class TestTopologyReconstruction:
    def test_all_13_weights_used(self):
        assert len(FIGURE1_EDGES) == 13
        weights = sorted(FIGURE1_EDGES.values())
        assert weights == sorted(
            [120.10, 120.06, 120.56, 120.45, 120.34, 200.03, 120.02,
             75.37, 75.27, 120.04, 120.36, 75.48, 75.49]
        )

    def test_connected_with_10_nodes(self, topo):
        assert topo.n == 10
        assert topo.is_connected()

    def test_group_composition(self, topo):
        assert set(FIGURE1_MEMBERS) == set(topo.members)
        assert topo.non_members == {4, 6, 8, 9}


class TestExample1SSspst:
    def test_hop_tree_matches_figure2(self, topo, results):
        _, res = results["hop"]
        assert res.converged
        assert [s.parent for s in res.states] == FIGURE2_HOP_PARENTS

    def test_three_rounds_as_in_paper(self, results):
        """Example 1: 'SS-SPST protocol takes 3 rounds to stabilize'."""
        _, res = results["hop"]
        assert res.rounds == 3


class TestExample2SSspstT:
    def test_tx_tree_matches_figure3(self, topo, results):
        _, res = results["tx"]
        assert res.converged
        assert [s.parent for s in res.states] == FIGURE3_TX_PARENTS

    def test_node3_relays_through_node7(self, results):
        """'It is more energy efficient if node 3 makes node 7 its parent
        instead of node 0' (Example 2)."""
        _, res = results["tx"]
        assert res.states[3].parent == 7


class TestExample3SSspstF:
    def test_f_converges(self, results):
        _, res = results["farthest"]
        assert res.converged

    def test_f_takes_more_rounds_than_hop(self, results):
        """The paper's narrative: metric refinement costs extra rounds
        (hop: 3, T: 4, F: 5 in the paper's counting)."""
        assert results["farthest"][1].rounds >= results["hop"][1].rounds

    def test_f_is_discard_blind(self, topo, results):
        """F picks the costliest-child-optimal tree regardless of
        overhearing: its discard energy exceeds the E tree's."""
        em = metric_by_name("energy", EXAMPLE_RADIO)
        f_tree = results["farthest"][1].tree(topo)
        e_tree = results["energy"][1].tree(topo)
        assert em.tree_discard_cost(topo, f_tree) > em.tree_discard_cost(topo, e_tree)


class TestExample5SSspstE:
    def test_e_converges_and_legitimate(self, topo, results):
        m, res = results["energy"]
        assert res.converged
        assert is_legitimate(topo, m, res.states)

    def test_members_route_around_node4(self, topo, results):
        """Example 5: 'it will be better for nodes 5 and 3 to join node 6
        instead of node 4' — node 4's transmissions would be overheard by
        the non-group nodes 8 and 9."""
        _, res = results["energy"]
        assert res.states[5].parent == 6
        assert res.states[3].parent == 6

    def test_node4_transmits_no_data(self, topo, results):
        """With 5 and 3 gone, node 4's children are only the non-members
        8, 9: the branch is pruned and node 4 goes silent."""
        _, res = results["energy"]
        tree = res.tree(topo)
        assert 4 not in tree.forwarding_nodes()
        assert tree.data_tx_radius(4) == 0.0

    def test_e_tree_cheapest_under_e_metric(self, topo, results):
        em = metric_by_name("energy", EXAMPLE_RADIO)
        e_cost = em.tree_cost(topo, results["energy"][1].tree(topo))
        for other in ("hop", "tx", "farthest"):
            other_cost = em.tree_cost(topo, results[other][1].tree(topo))
            assert e_cost <= other_cost + 1e-15, other

    def test_stabilization_round_ordering(self, results):
        """Paper ordering: hop (3) <= T (4) <= F (5) = E (5).  Our executor
        reproduces the ordering though absolute counts differ by one for
        the richer metrics (see EXPERIMENTS.md)."""
        r = {k: res.rounds for k, (_, res) in results.items()}
        assert r["hop"] <= r["tx"] <= r["farthest"]
        assert r["energy"] >= r["tx"]


class TestFigure5:
    def test_only_e_avoids_the_noisy_parent(self):
        topo5 = figure5_topology()
        parents = {}
        for name in METRIC_NAMES:
            m = metric_by_name(name, EXAMPLE_RADIO)
            res = SyncExecutor(topo5, m).run(fresh_states(topo5, m))
            assert res.converged
            parents[name] = res.states[3].parent
        # X (node 3) equidistant from 1 and 2; only E sees the three
        # non-group overhearers around 1.
        assert parents["energy"] == 2
        assert parents["hop"] == 1  # id tie-break
        assert parents["tx"] == 1
        assert parents["farthest"] == 1

    def test_non_group_nodes_attach_somewhere(self):
        topo5 = figure5_topology()
        m = metric_by_name("energy", EXAMPLE_RADIO)
        res = SyncExecutor(topo5, m).run(fresh_states(topo5, m))
        tree = res.tree(topo5)
        assert tree.spans_all()  # NG nodes join the spanning tree too
