"""Tests for the analysis/reporting helpers."""

from repro.analysis import ascii_plot, series_table, shape_report
from repro.experiments.sweeps import SweepResult


class TestAsciiPlot:
    def test_renders_markers_and_legend(self):
        out = ascii_plot([1.0, 2.0, 3.0], {"pdr": [0.9, 0.8, 0.7]})
        assert "o=pdr" in out
        assert "o" in out.splitlines()[0] or any(
            "o" in line for line in out.splitlines()
        )

    def test_multiple_series_distinct_markers(self):
        out = ascii_plot([1, 2], {"a": [1.0, 2.0], "b": [2.0, 1.0]})
        assert "o=a" in out and "x=b" in out

    def test_handles_nan_and_inf(self):
        out = ascii_plot([1, 2, 3], {"a": [1.0, float("nan"), float("inf")]})
        assert "1.000" in out

    def test_all_non_finite(self):
        out = ascii_plot([1], {"a": [float("nan")]})
        assert "no finite data" in out

    def test_flat_series(self):
        out = ascii_plot([1, 2], {"a": [5.0, 5.0]})
        assert "5.000" in out

    def test_labels(self):
        out = ascii_plot([1, 2], {"a": [1, 2]}, y_label="pdr", x_label="velocity")
        assert out.startswith("pdr")
        assert "velocity" in out


class TestReport:
    def test_shape_report_pass_fail(self):
        out = shape_report({"trend holds": True, "winner right": False})
        assert "[PASS] trend holds" in out
        assert "[FAIL] winner right" in out

    def test_series_table_delegates(self):
        result = SweepResult(
            x_name="x", x_values=[1.0], y_name="y", series={"p": [0.5]}
        )
        assert "0.5000" in series_table(result, "t")
