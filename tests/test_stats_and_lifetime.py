"""Tests for the CI statistics helpers and the lifetime extension."""

import pytest

from repro.analysis.stats import CiSummary, dominates, mean_ci, sweep_cis
from repro.experiments.config import ScenarioConfig
from repro.experiments.lifetime import compare_lifetimes, run_lifetime
from repro.experiments.sweeps import SweepResult


class TestMeanCi:
    def test_basic(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3
        assert ci.half_width > 0
        assert ci.low < 2.0 < ci.high

    def test_single_sample_infinite_width(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == float("inf")

    def test_empty_is_nan(self):
        ci = mean_ci([])
        assert ci.n == 0
        assert ci.mean != ci.mean  # NaN

    def test_filters_non_finite(self):
        ci = mean_ci([1.0, float("inf"), float("nan"), 3.0])
        assert ci.n == 2
        assert ci.mean == pytest.approx(2.0)

    def test_overlap(self):
        a = CiSummary(1.0, 0.5, 3)
        b = CiSummary(1.8, 0.5, 3)
        c = CiSummary(3.0, 0.5, 3)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class TestMeanCiGolden:
    """Golden numeric values for the aggregation the campaign engine uses.

    Hand-checked against Student-t tables: t(0.975, df=1) = 12.70620474,
    t(0.975, df=2) = 4.30265273, t(0.95, df=2) = 2.91998558,
    t(0.975, df=4) = 2.77644511.
    """

    def test_three_samples_95(self):
        # mean 2, sample sd 1, hw = 4.30265273 / sqrt(3)
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0, abs=1e-12)
        assert ci.half_width == pytest.approx(2.48413771175033, rel=1e-9)
        assert ci.n == 3

    def test_two_samples_95(self):
        # mean 11, var 2, hw = t(0.975, df=1) * sqrt(2/2) = 12.70620474
        ci = mean_ci([10.0, 12.0])
        assert ci.mean == pytest.approx(11.0, abs=1e-12)
        assert ci.half_width == pytest.approx(12.706204736174694, rel=1e-9)

    def test_three_samples_90(self):
        ci = mean_ci([1.0, 2.0, 3.0], confidence=0.90)
        assert ci.half_width == pytest.approx(1.6858544608470483, rel=1e-9)

    def test_five_samples_95(self):
        # values 2..10 step 2: mean 6, var 10, hw = 2.77644511 * sqrt(2)
        ci = mean_ci([2.0, 4.0, 6.0, 8.0, 10.0])
        assert ci.mean == pytest.approx(6.0, abs=1e-12)
        assert ci.half_width == pytest.approx(3.9264863229551143, rel=1e-9)
        assert ci.low == pytest.approx(6.0 - 3.9264863229551143, rel=1e-9)
        assert ci.high == pytest.approx(6.0 + 3.9264863229551143, rel=1e-9)

    def test_single_replication_edge_case(self):
        """One seed: the mean is exact but the interval must be infinite
        (the campaign aggregator shows ±inf rather than false precision)."""
        ci = mean_ci([7.5])
        assert ci == CiSummary(7.5, float("inf"), 1)
        assert ci.low == float("-inf") and ci.high == float("inf")
        # an infinite interval overlaps anything
        assert ci.overlaps(CiSummary(1e9, 0.0, 3))

    def test_identical_samples_zero_width(self):
        ci = mean_ci([4.2, 4.2, 4.2])
        assert ci.mean == pytest.approx(4.2, abs=1e-12)
        assert ci.half_width == pytest.approx(0.0, abs=1e-12)


class _FakeRun:
    def __init__(self, value):
        self.value = value


class TestSweepCis:
    def _result(self):
        return SweepResult(
            x_name="x",
            x_values=[1.0],
            y_name="y",
            series={"a": [1.0], "b": [10.0]},
            raw={
                ("a", 1.0): [_FakeRun(1.0), _FakeRun(1.2), _FakeRun(0.8)],
                ("b", 1.0): [_FakeRun(10.0), _FakeRun(9.5), _FakeRun(10.5)],
            },
        )

    def test_sweep_cis(self):
        cis = sweep_cis(self._result(), lambda r: r.value)
        assert cis[("a", 1.0)].mean == pytest.approx(1.0)
        assert cis[("b", 1.0)].mean == pytest.approx(10.0)

    def test_dominates_lower(self):
        verdicts = dominates(
            self._result(), lambda r: r.value, better="a", worse="b", direction="lower"
        )
        assert verdicts == [True]

    def test_dominates_higher(self):
        verdicts = dominates(
            self._result(), lambda r: r.value, better="b", worse="a", direction="higher"
        )
        assert verdicts == [True]


class TestLifetime:
    CFG = dict(
        sim_time=40.0, group_size=6, n_nodes=20, rate_kbps=16.0,
        traffic_start=6.0, arena_w=500.0, arena_h=500.0,
    )

    def test_generous_battery_no_deaths(self):
        cfg = ScenarioConfig.quick(protocol="ss-spst", seed=3, **self.CFG)
        res = run_lifetime(cfg, battery_j=1e6)
        assert res.alive_at_end
        assert res.first_death_t is None

    def test_tiny_battery_kills_relays(self):
        cfg = ScenarioConfig.quick(protocol="ss-spst", seed=3, **self.CFG)
        res = run_lifetime(cfg, battery_j=0.2)
        assert not res.alive_at_end
        assert res.first_death_t is not None
        assert res.first_death_t > cfg.traffic_start  # deaths need traffic

    def test_deaths_sorted(self):
        cfg = ScenarioConfig.quick(protocol="flooding", seed=3, **self.CFG)
        res = run_lifetime(cfg, battery_j=0.15)
        assert res.deaths == sorted(res.deaths)

    def test_invalid_battery(self):
        cfg = ScenarioConfig.quick(protocol="ss-spst", seed=3, **self.CFG)
        with pytest.raises(ValueError):
            run_lifetime(cfg, battery_j=0.0)

    def test_compare_returns_per_protocol(self):
        base = ScenarioConfig.quick(seed=3, **self.CFG)
        out = compare_lifetimes(
            ["ss-spst", "flooding"], battery_j=0.5, base=base, seeds=(3,)
        )
        assert set(out) == {"ss-spst", "flooding"}
        assert all(len(v) == 1 for v in out.values())

    def test_energy_awareness_extends_lifetime(self):
        """The motivation come full circle: with equal batteries, the
        energy-heavy protocol (flooding) loses its first node no later
        than the power-controlled tree protocol."""
        base = ScenarioConfig.quick(seed=4, **self.CFG)
        out = compare_lifetimes(
            ["ss-spst-e", "flooding"], battery_j=0.6, base=base, seeds=(4,)
        )
        ss = out["ss-spst-e"][0]
        fl = out["flooding"][0]
        t_ss = ss.first_death_t if ss.first_death_t is not None else float("inf")
        t_fl = fl.first_death_t if fl.first_death_t is not None else float("inf")
        assert t_ss >= t_fl
