"""Tests for the CI statistics helpers and the lifetime extension."""

import pytest

from repro.analysis.stats import CiSummary, dominates, mean_ci, sweep_cis
from repro.experiments.config import ScenarioConfig
from repro.experiments.lifetime import compare_lifetimes, run_lifetime
from repro.experiments.sweeps import SweepResult


class TestMeanCi:
    def test_basic(self):
        ci = mean_ci([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.n == 3
        assert ci.half_width > 0
        assert ci.low < 2.0 < ci.high

    def test_single_sample_infinite_width(self):
        ci = mean_ci([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == float("inf")

    def test_empty_is_nan(self):
        ci = mean_ci([])
        assert ci.n == 0
        assert ci.mean != ci.mean  # NaN

    def test_filters_non_finite(self):
        ci = mean_ci([1.0, float("inf"), float("nan"), 3.0])
        assert ci.n == 2
        assert ci.mean == pytest.approx(2.0)

    def test_overlap(self):
        a = CiSummary(1.0, 0.5, 3)
        b = CiSummary(1.8, 0.5, 3)
        c = CiSummary(3.0, 0.5, 3)
        assert a.overlaps(b)
        assert not a.overlaps(c)


class _FakeRun:
    def __init__(self, value):
        self.value = value


class TestSweepCis:
    def _result(self):
        return SweepResult(
            x_name="x",
            x_values=[1.0],
            y_name="y",
            series={"a": [1.0], "b": [10.0]},
            raw={
                ("a", 1.0): [_FakeRun(1.0), _FakeRun(1.2), _FakeRun(0.8)],
                ("b", 1.0): [_FakeRun(10.0), _FakeRun(9.5), _FakeRun(10.5)],
            },
        )

    def test_sweep_cis(self):
        cis = sweep_cis(self._result(), lambda r: r.value)
        assert cis[("a", 1.0)].mean == pytest.approx(1.0)
        assert cis[("b", 1.0)].mean == pytest.approx(10.0)

    def test_dominates_lower(self):
        verdicts = dominates(
            self._result(), lambda r: r.value, better="a", worse="b", direction="lower"
        )
        assert verdicts == [True]

    def test_dominates_higher(self):
        verdicts = dominates(
            self._result(), lambda r: r.value, better="b", worse="a", direction="higher"
        )
        assert verdicts == [True]


class TestLifetime:
    CFG = dict(
        sim_time=40.0, group_size=6, n_nodes=20, rate_kbps=16.0,
        traffic_start=6.0, arena_w=500.0, arena_h=500.0,
    )

    def test_generous_battery_no_deaths(self):
        cfg = ScenarioConfig.quick(protocol="ss-spst", seed=3, **self.CFG)
        res = run_lifetime(cfg, battery_j=1e6)
        assert res.alive_at_end
        assert res.first_death_t is None

    def test_tiny_battery_kills_relays(self):
        cfg = ScenarioConfig.quick(protocol="ss-spst", seed=3, **self.CFG)
        res = run_lifetime(cfg, battery_j=0.2)
        assert not res.alive_at_end
        assert res.first_death_t is not None
        assert res.first_death_t > cfg.traffic_start  # deaths need traffic

    def test_deaths_sorted(self):
        cfg = ScenarioConfig.quick(protocol="flooding", seed=3, **self.CFG)
        res = run_lifetime(cfg, battery_j=0.15)
        assert res.deaths == sorted(res.deaths)

    def test_invalid_battery(self):
        cfg = ScenarioConfig.quick(protocol="ss-spst", seed=3, **self.CFG)
        with pytest.raises(ValueError):
            run_lifetime(cfg, battery_j=0.0)

    def test_compare_returns_per_protocol(self):
        base = ScenarioConfig.quick(seed=3, **self.CFG)
        out = compare_lifetimes(
            ["ss-spst", "flooding"], battery_j=0.5, base=base, seeds=(3,)
        )
        assert set(out) == {"ss-spst", "flooding"}
        assert all(len(v) == 1 for v in out.values())

    def test_energy_awareness_extends_lifetime(self):
        """The motivation come full circle: with equal batteries, the
        energy-heavy protocol (flooding) loses its first node no later
        than the power-controlled tree protocol."""
        base = ScenarioConfig.quick(seed=4, **self.CFG)
        out = compare_lifetimes(
            ["ss-spst-e", "flooding"], battery_j=0.6, base=base, seeds=(4,)
        )
        ss = out["ss-spst-e"][0]
        fl = out["flooding"][0]
        t_ss = ss.first_death_t if ss.first_death_t is not None else float("inf")
        t_fl = fl.first_death_t if fl.first_death_t is not None else float("inf")
        assert t_ss >= t_fl
