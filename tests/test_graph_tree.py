"""Tests for repro.graph.tree."""

import pytest

from repro.graph import Topology, TreeAssignment


@pytest.fixture
def topo():
    """A small tree-friendly topology.

    0 -- 1 -- 2
     \\-- 3 -- 4
    with an extra 1-3 cross edge; members {0, 2, 4}.
    """
    edges = {
        (0, 1): 100.0,
        (1, 2): 80.0,
        (0, 3): 50.0,
        (3, 4): 120.0,
        (1, 3): 60.0,
    }
    return Topology.from_edges(5, edges, source=0, members=[0, 2, 4])


class TestValidation:
    def test_valid_tree(self, topo):
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        assert t.spans_all()

    def test_parent_must_be_neighbor(self, topo):
        with pytest.raises(ValueError):
            TreeAssignment(topo, [None, 0, 0, 0, 3])  # 2 is not adjacent to 0

    def test_cycle_detected(self, topo):
        with pytest.raises(ValueError, match="cycle"):
            TreeAssignment(topo, [None, 3, 1, 1, 3])  # 1 -> 3 -> 1

    def test_source_cannot_have_parent(self, topo):
        with pytest.raises(ValueError):
            TreeAssignment(topo, [1, 0, 1, 0, 3])

    def test_disconnected_nodes_allowed(self, topo):
        t = TreeAssignment(topo, [None, 0, 1, None, None])
        assert not t.spans_all()
        assert t.connected_nodes() == {0, 1, 2}
        assert not t.spans_members()  # member 4 disconnected


class TestStructure:
    def test_children(self, topo):
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        ch = t.children()
        assert ch[0] == [1, 3]
        assert ch[1] == [2]
        assert ch[4] == []

    def test_edges(self, topo):
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        assert sorted(t.edges()) == [(0, 1), (0, 3), (1, 2), (3, 4)]

    def test_depth(self, topo):
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        assert t.depth(0) == 0
        assert t.depth(2) == 2
        assert t.max_depth() == 2

    def test_path_to_root(self, topo):
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        assert t.path_to_root(2) == [2, 1, 0]


class TestPruning:
    def test_flags_bottom_up(self, topo):
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        flags = t.flags()
        # Members 0, 2, 4; relays 1, 3 have members downstream.
        assert flags.tolist() == [True, True, True, True, True]

    def test_flags_prune_dead_branch(self):
        # member set excludes the 3-4 branch entirely
        edges = {(0, 1): 100.0, (1, 2): 80.0, (0, 3): 50.0, (3, 4): 120.0}
        topo = Topology.from_edges(5, edges, source=0, members=[0, 2])
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        flags = t.flags()
        assert flags.tolist() == [True, True, True, False, False]
        assert t.forwarding_nodes() == {0, 1}

    def test_flagged_children(self):
        edges = {(0, 1): 100.0, (1, 2): 80.0, (0, 3): 50.0, (3, 4): 120.0}
        topo = Topology.from_edges(5, edges, source=0, members=[0, 2])
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        fc = t.flagged_children()
        assert fc[0] == [1]  # 3 unflagged
        assert fc[1] == [2]

    def test_data_tx_radius(self):
        edges = {(0, 1): 100.0, (1, 2): 80.0, (0, 3): 50.0, (3, 4): 120.0}
        topo = Topology.from_edges(5, edges, source=0, members=[0, 2])
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        assert t.data_tx_radius(0) == 100.0  # reaches flagged child 1 only
        assert t.data_tx_radius(3) == 0.0  # pruned: silent
        assert t.data_tx_radius(2) == 0.0  # leaf

    def test_pruned_radius_smaller_than_full(self, topo):
        """Pruning can only shrink transmission radii."""
        t = TreeAssignment(topo, [None, 0, 1, 0, 3])
        for v in range(topo.n):
            full = max(
                (topo.dist[v, c] for c in t.children()[v]), default=0.0
            )
            assert t.data_tx_radius(v) <= full + 1e-12
