"""Tests for the mobility models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mobility import (
    GaussMarkov,
    RandomWalk,
    RandomWaypoint,
    StaticPlacement,
    TraceMobility,
)
from repro.util.geometry import Arena


ARENA = Arena(500.0, 500.0)


class TestStaticPlacement:
    def test_positions_never_change(self, rng):
        m = StaticPlacement(10, ARENA, rng=rng)
        p0 = m.positions(0.0).copy()
        p1 = m.positions(100.0)
        assert np.array_equal(p0, p1)

    def test_explicit_positions(self):
        pts = np.array([[1.0, 2.0], [3.0, 4.0]])
        m = StaticPlacement(2, ARENA, positions=pts)
        assert np.array_equal(m.positions(5.0), pts)

    def test_rejects_outside_arena(self):
        with pytest.raises(ValueError):
            StaticPlacement(1, ARENA, positions=np.array([[600.0, 0.0]]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            StaticPlacement(3, ARENA, positions=np.zeros((2, 2)))

    def test_needs_positions_or_rng(self):
        with pytest.raises(ValueError):
            StaticPlacement(3, ARENA)


class TestRandomWaypoint:
    def test_noble_fix_enforced(self, rng):
        with pytest.raises(ValueError, match="Noble"):
            RandomWaypoint(5, ARENA, v_min=0.0, v_max=10.0, rng=rng)

    def test_speed_bounds_validation(self, rng):
        with pytest.raises(ValueError):
            RandomWaypoint(5, ARENA, v_min=5.0, v_max=1.0, rng=rng)

    def test_positions_stay_inside(self, rng):
        m = RandomWaypoint(20, ARENA, v_min=1.0, v_max=20.0, rng=rng)
        for t in np.linspace(0, 2000, 101):
            assert ARENA.contains(m.positions(float(t))).all()

    def test_backwards_query_rejected(self, rng):
        m = RandomWaypoint(5, ARENA, v_min=1.0, v_max=5.0, rng=rng)
        m.positions(10.0)
        with pytest.raises(ValueError):
            m.positions(5.0)

    def test_movement_speed_respected(self, rng):
        m = RandomWaypoint(10, ARENA, v_min=2.0, v_max=8.0, rng=rng)
        t, dt = 0.0, 0.5
        prev = m.positions(t).copy()
        for _ in range(200):
            t += dt
            cur = m.positions(t)
            step = np.hypot(*(cur - prev).T)
            # Never faster than v_max (equality up to fp error).
            assert (step <= 8.0 * dt + 1e-6).all()
            prev = cur.copy()

    def test_nodes_actually_move(self, rng):
        m = RandomWaypoint(10, ARENA, v_min=1.0, v_max=5.0, rng=rng)
        p0 = m.positions(0.0).copy()
        p1 = m.positions(200.0)
        moved = np.hypot(*(p1 - p0).T)
        assert (moved > 1.0).any()

    def test_pause_time(self, rng):
        m = RandomWaypoint(5, ARENA, v_min=1.0, v_max=2.0, pause_time=10.0, rng=rng)
        # Over a long horizon nodes pause; instantaneous speeds include 0.
        saw_pause = False
        for t in np.linspace(0, 3000, 600):
            speeds = m.current_speeds(float(t))
            if (speeds == 0.0).any():
                saw_pause = True
                break
        assert saw_pause

    def test_mean_speed_does_not_decay(self, rng):
        """The Yoon-Liu-Noble pathology check: with v_min > 0 the average
        instantaneous speed over late windows stays near the early value."""
        m = RandomWaypoint(40, ARENA, v_min=1.0, v_max=19.0, rng=rng)
        early, late = [], []
        for t in np.arange(0.0, 500.0, 10.0):
            early.append(m.current_speeds(float(t)).mean())
        for t in np.arange(5000.0, 5500.0, 10.0):
            late.append(m.current_speeds(float(t)).mean())
        assert np.mean(late) > 0.5 * np.mean(early)

    def test_deterministic_given_seed(self):
        a = RandomWaypoint(5, ARENA, 1.0, 5.0, rng=np.random.default_rng(3))
        b = RandomWaypoint(5, ARENA, 1.0, 5.0, rng=np.random.default_rng(3))
        assert np.array_equal(a.positions(123.0), b.positions(123.0))


class TestRandomWalk:
    def test_positions_stay_inside(self, rng):
        m = RandomWalk(15, ARENA, v_min=0.0, v_max=15.0, rng=rng)
        for t in np.linspace(0, 1000, 101):
            assert ARENA.contains(m.positions(float(t))).all()

    def test_reflection_preserves_motion(self, rng):
        m = RandomWalk(10, ARENA, v_min=5.0, v_max=10.0, mean_epoch=50.0, rng=rng)
        p0 = m.positions(0.0).copy()
        p1 = m.positions(100.0)
        assert (np.hypot(*(p1 - p0).T) > 0).any()

    def test_invalid_params(self, rng):
        with pytest.raises(ValueError):
            RandomWalk(5, ARENA, v_min=-1.0, v_max=2.0, rng=rng)
        with pytest.raises(ValueError):
            RandomWalk(5, ARENA, v_min=0.0, v_max=2.0, mean_epoch=0.0, rng=rng)


class TestGaussMarkov:
    def test_positions_stay_inside(self, rng):
        m = GaussMarkov(15, ARENA, mean_speed=10.0, rng=rng)
        for t in np.linspace(0, 1000, 101):
            assert ARENA.contains(m.positions(float(t))).all()

    def test_alpha_bounds(self, rng):
        with pytest.raises(ValueError):
            GaussMarkov(5, ARENA, alpha=1.5, rng=rng)

    def test_ballistic_limit(self, rng):
        """alpha=1 with zero noise keeps speed constant."""
        m = GaussMarkov(
            5, ARENA, mean_speed=5.0, alpha=1.0, sigma_speed=0.0, sigma_dir=0.0, rng=rng
        )
        m.positions(100.0)
        assert np.allclose(m._speed, 5.0)


class TestTraceMobility:
    def test_linear_interpolation(self):
        traces = [[(0.0, 0.0, 0.0), (10.0, 100.0, 0.0)]]
        m = TraceMobility(ARENA, traces)
        assert m.positions(5.0)[0].tolist() == [50.0, 0.0]

    def test_before_first_and_after_last(self):
        traces = [[(5.0, 10.0, 10.0), (10.0, 20.0, 20.0)]]
        m = TraceMobility(ARENA, traces)
        assert m.positions(0.0)[0].tolist() == [10.0, 10.0]
        assert m.positions(100.0)[0].tolist() == [20.0, 20.0]

    def test_multiple_nodes(self):
        traces = [
            [(0.0, 0.0, 0.0)],
            [(0.0, 100.0, 100.0), (10.0, 200.0, 100.0)],
        ]
        m = TraceMobility(ARENA, traces)
        pos = m.positions(10.0)
        assert pos[0].tolist() == [0.0, 0.0]
        assert pos[1].tolist() == [200.0, 100.0]

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            TraceMobility(ARENA, [[(5.0, 0, 0), (1.0, 1, 1)]])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            TraceMobility(ARENA, [[]])

    def test_rejects_out_of_arena(self):
        with pytest.raises(ValueError):
            TraceMobility(ARENA, [[(0.0, 9999.0, 0.0)]])


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), vmax=st.floats(1.5, 25.0))
def test_rwp_property_positions_bounded(seed, vmax):
    """Property: RWP positions remain in the arena for any seed/speed."""
    arena = Arena(300.0, 300.0)
    m = RandomWaypoint(8, arena, v_min=1.0, v_max=vmax, rng=np.random.default_rng(seed))
    for t in (0.0, 3.7, 50.1, 222.2, 1000.0):
        assert arena.contains(m.positions(t)).all()
