"""Tests for PeriodicTimer."""

import numpy as np
import pytest

from repro.sim.timers import PeriodicTimer


class TestPeriodicTimer:
    def test_regular_ticks(self, sim):
        times = []
        PeriodicTimer(sim, 2.0, lambda: times.append(sim.now))
        sim.run(until=7.0)
        assert times == [2.0, 4.0, 6.0]

    def test_start_offset(self, sim):
        times = []
        PeriodicTimer(sim, 2.0, lambda: times.append(sim.now), start_offset=0.5)
        sim.run(until=5.0)
        assert times == [0.5, 2.5, 4.5]

    def test_stop(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]

    def test_stop_from_callback(self, sim):
        timer_box = []

        def cb():
            if sim.now >= 3.0:
                timer_box[0].stop()

        timer_box.append(PeriodicTimer(sim, 1.0, cb))
        sim.run(until=10.0)
        assert timer_box[0].ticks == 3

    def test_jitter_bounds(self, sim):
        times = []
        rng = np.random.default_rng(0)
        PeriodicTimer(sim, 1.0, lambda: times.append(sim.now), jitter=0.2, rng=rng)
        sim.run(until=50.0)
        gaps = np.diff(times)
        assert len(times) > 40
        # Consecutive jittered ticks differ by interval +- jitter.
        assert gaps.min() >= 1.0 - 0.2 - 1e-9
        assert gaps.max() <= 1.0 + 0.2 + 1e-9

    def test_jitter_requires_rng(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 1.0, lambda: None, jitter=0.1)

    def test_invalid_interval(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_reschedule_changes_period(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, timer.reschedule, 3.0)
        sim.run(until=10.0)
        assert times == [1.0, 2.0, 3.0, 6.0, 9.0]

    def test_ticks_counter(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        sim.run(until=5.5)
        assert timer.ticks == 5
