"""Deep parent-chain regression: SS-SPST-E on line topologies far beyond
the interpreter's recursion limit.

``GlobalView._cost_up`` used to price candidate paths with one Python
stack frame per ancestor, so any parent chain deeper than
``sys.getrecursionlimit()`` (line topologies at n >~ 1000, or long chains
in arbitrary illegitimate states) raised ``RecursionError``.  The walk is
iterative now; these tests pin that on a 2000-node line — stabilization,
legitimacy, and a direct deep ``path_price`` query — without touching the
recursion limit.
"""

import sys

import pytest

from repro.core import (
    IncrementalCentralDaemonExecutor,
    NodeState,
    fresh_states,
    is_legitimate,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.core.views import GlobalView
from repro.graph import Topology

N_LINE = 2000  # well above the default recursion limit (usually 1000)


def _line(n, members):
    edges = {(i, i + 1): 60.0 for i in range(n - 1)}
    return Topology.from_edges(n, edges, source=0, members=members)


@pytest.fixture(scope="module")
def line_result():
    topo = _line(N_LINE, members=[1, N_LINE // 2, N_LINE - 1])
    metric = metric_by_name("energy", EXAMPLE_RADIO)
    result = IncrementalCentralDaemonExecutor(topo, metric).run(
        fresh_states(topo, metric)
    )
    return topo, metric, result


def test_line_is_deeper_than_recursion_limit():
    assert N_LINE > sys.getrecursionlimit()


def test_deep_line_stabilizes_without_recursion_error(line_result):
    topo, metric, result = line_result
    assert result.converged
    assert is_legitimate(topo, metric, result.states)


def test_deep_line_tree_is_the_line(line_result):
    topo, _metric, result = line_result
    tree = result.tree(topo)
    assert all(tree.parents[v] == v - 1 for v in range(1, topo.n))


def test_path_price_walks_a_full_depth_chain(line_result):
    """A direct path_price query whose chain spans the whole line — the
    exact call shape that used to overflow the stack."""
    topo, metric, result = line_result
    view = GlobalView(topo, result.states)
    deepest = topo.n - 1
    price = view.path_price(
        result.states[deepest].parent, deepest, True, metric
    )
    assert price >= 0.0


def test_deep_chain_in_illegitimate_state():
    """Arbitrary states can also hold deep chains (and a cycle at the
    top); pricing through them must not recurse either."""
    n = 1500
    topo = _line(n, members=[n - 1])
    metric = metric_by_name("energy", EXAMPLE_RADIO)
    states = [NodeState(parent=v - 1 if v else None, cost=1.0, hop=v) for v in range(n)]
    # plant a 2-cycle at the top of the chain: 0 <-> 1
    states[0] = NodeState(parent=1, cost=1.0, hop=0)
    view = GlobalView(topo, states)
    price = view.path_price(n - 2, n - 1, True, metric)
    assert price >= 0.0
