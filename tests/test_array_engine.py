"""Array engine parity and scale-invariance properties.

The vectorized :class:`~repro.core.array_engine.ArrayRoundEngine`'s whole
contract is **bit-identity** with the scalar :class:`RoundEngine` — not
"close enough": states, rounds, convergence verdict, cost history and
move counts must match exactly, under every daemon, both evaluation
modes, and from arbitrary illegitimate states (the object engine is the
oracle; see ``core/array_engine.py`` for why exactness is achievable).
Alongside: the scale-invariance property both engines must satisfy
(uniform energy rescaling changes neither the chosen tree nor the
convergence verdict — the regression behind ``COST_TOL``'s relative
semantics, see ``docs/convergence.md``), the sparse topology's
equivalence to the dense one, and the ``engine=`` plumbing.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DAEMON_NAMES,
    ArrayRoundEngine,
    NodeState,
    RoundEngine,
    arbitrary_states,
    engine_for,
    fresh_states,
    is_legitimate,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.core.metrics import METRIC_NAMES
from repro.energy.radio import FirstOrderRadioModel
from repro.graph import SparseTopology, Topology

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAX_ROUNDS = 150


def random_connected_topology(seed, n_min=5, n_max=12):
    rng = np.random.default_rng(seed)
    for _ in range(50):
        n = int(rng.integers(n_min, n_max + 1))
        pos = rng.random((n, 2)) * 400.0
        members = [int(x) for x in rng.choice(n, size=max(2, n // 3), replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            return topo
    pytest.skip("could not sample a connected topology")


def pair(topo, metric, daemon, incremental, seed=9):
    """Matched (object, array) engines with identical daemon rng streams."""
    obj = RoundEngine(
        topo, metric, daemon=daemon, incremental=incremental,
        rng=np.random.default_rng(seed),
    )
    arr = ArrayRoundEngine(
        topo, metric, daemon=daemon, incremental=incremental,
        rng=np.random.default_rng(seed),
    )
    return obj, arr


def assert_same_trajectory(a, b):
    assert a.states == b.states  # exact, not approx: bit-identical
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cost_history == b.cost_history
    assert a.moves == b.moves
    # evaluations too: the batched evaluator must examine exactly the
    # nodes the object engine's incremental dirty-set logic examines
    assert a.evaluations == b.evaluations


# ----------------------------------------------------------------------
# The tentpole contract: the object engine is the bit-identity oracle
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000), metric_name=st.sampled_from(METRIC_NAMES))
@pytest.mark.parametrize("incremental", [False, True])
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_array_engine_bit_identical_any_daemon(daemon, incremental, metric_name, seed):
    """Every daemon x every metric x both modes, from arbitrary
    illegitimate states (parent cycles, garbage costs): the array engine
    replays the object engine exactly."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))
    obj, arr = pair(topo, m, daemon, incremental)
    assert_same_trajectory(
        obj.run(list(init), max_rounds=MAX_ROUNDS),
        arr.run(list(init), max_rounds=MAX_ROUNDS),
    )


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000), metric_name=st.sampled_from(METRIC_NAMES))
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_array_engine_bit_identical_warm_start(daemon, metric_name, seed):
    """run_perturbed parity: settle with the object engine, corrupt a few
    nodes, and let both engines absorb the same faults."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    settled = RoundEngine(
        topo, m, daemon=daemon, incremental=True, rng=np.random.default_rng(9)
    ).run(fresh_states(topo, m), max_rounds=MAX_ROUNDS)
    if not settled.converged:  # adversarial may legitimately stall on F
        return
    rng = np.random.default_rng(seed + 7)
    faults = []
    for v in rng.choice(topo.n, size=max(1, topo.n // 4), replace=False):
        v = int(v)
        if v == topo.source:
            continue
        nbrs = topo.neighbors(v)
        u = int(rng.choice(nbrs)) if nbrs else None
        ns = NodeState(
            parent=u,
            cost=float(rng.random() * 1e-5),
            hop=int(rng.integers(0, topo.n)),
        )
        if settled.states[v] != ns:
            faults.append((v, ns))
    if not faults:
        return
    obj, arr = pair(topo, m, daemon, True)
    assert_same_trajectory(
        obj.run_perturbed(list(settled.states), faults, max_rounds=MAX_ROUNDS),
        arr.run_perturbed(list(settled.states), faults, max_rounds=MAX_ROUNDS),
    )


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000), metric_name=st.sampled_from(METRIC_NAMES))
@pytest.mark.parametrize("daemon", ["synchronous", "distributed", "central"])
def test_legacy_apply_path_bit_identical(daemon, metric_name, seed):
    """The preserved PR-6 apply path (per-move commits + from-scratch
    snapshots, ``legacy_apply=True``) replays the same trajectories as
    the batched/incremental default — it exists as the bench baseline
    and must stay a pure performance fork."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))
    new = ArrayRoundEngine(
        topo, m, daemon=daemon, incremental=True,
        rng=np.random.default_rng(9),
    )
    old = ArrayRoundEngine(
        topo, m, daemon=daemon, incremental=True,
        rng=np.random.default_rng(9), legacy_apply=True,
    )
    assert_same_trajectory(
        new.run(list(init), max_rounds=MAX_ROUNDS),
        old.run(list(init), max_rounds=MAX_ROUNDS),
    )


# ----------------------------------------------------------------------
# ColumnarView bookkeeping regressions
# ----------------------------------------------------------------------
class TestColumnarView:
    def _view(self, seed=3, metric_name="hop"):
        from repro.core.array_engine import ColumnarView, EdgeCsr

        topo = random_connected_topology(seed, n_min=8, n_max=12)
        m = metric_by_name(metric_name, EXAMPLE_RADIO)
        csr = EdgeCsr(topo, m)
        return topo, m, ColumnarView(topo, fresh_states(topo, m), csr, m)

    def test_noop_apply_does_not_bump_version(self):
        """Satellite regression: re-applying a node's current state is a
        no-op and must not invalidate version-keyed caches (snapshots are
        cached on ``view.version``; a spurious bump forces a rebuild)."""
        topo, m, view = self._view()
        v = (topo.source + 1) % topo.n
        before = view.version
        assert view.apply(v, view.states[v]) == ()
        assert view.version == before
        # a real mutation still bumps it
        ns = NodeState(parent=None, cost=m.infinity(topo), hop=0)
        if view.states[v] != ns:
            view.apply(v, ns)
            assert view.version == before + 1

    def test_count_within_matches_scalar_oracle(self):
        """The searchsorted ``EdgeCsr.count_within`` equals the per-row
        bisect the topology answers, for every node and mixed radii."""
        topo, m, view = self._view(seed=11)
        csr = view.csr
        rng = np.random.default_rng(0)
        U = rng.integers(0, topo.n, size=64).astype(np.int64)
        radii = rng.uniform(0.0, 500.0, size=64)
        got = csr.count_within(U, radii)
        want = [topo.count_within(int(u), float(r)) for u, r in zip(U, radii)]
        assert got.tolist() == want


# ----------------------------------------------------------------------
# Scale invariance: per-bit energy units are arbitrary, so uniformly
# rescaling every radio constant must change neither the tree nor the
# convergence verdict — on either engine (the satellite-1 regression,
# generalized across metrics x daemons x engines)
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(
    seed=st.integers(0, 100_000),
    metric_name=st.sampled_from(METRIC_NAMES),
    scale=st.sampled_from([1e-3, 0.5, 2.0, 1e3]),
)
@pytest.mark.parametrize("engine", ["object", "array"])
@pytest.mark.parametrize("daemon", ["synchronous", "central", "randomized"])
def test_rescaling_invariant_tree_and_verdict(daemon, engine, metric_name, scale, seed):
    topo = random_connected_topology(seed)
    r1 = EXAMPLE_RADIO
    r2 = FirstOrderRadioModel(
        e_elec=r1.e_elec * scale,
        e_rx=r1.e_rx * scale,
        eps_amp=r1.eps_amp * scale,
        alpha=r1.alpha,
        max_range=r1.max_range,
        d_floor=r1.d_floor,
    )
    results = []
    for radio in (r1, r2):
        m = metric_by_name(metric_name, radio)
        eng = engine_for(
            topo, m, daemon, incremental=True, engine=engine,
            rng=np.random.default_rng(seed),
        )
        results.append(eng.run(fresh_states(topo, m), max_rounds=300))
    res1, res2 = results
    assert res1.converged == res2.converged
    assert res1.rounds == res2.rounds
    assert [s.parent for s in res1.states] == [s.parent for s in res2.states]


# ----------------------------------------------------------------------
# Sparse topology: same graph, same answers
# ----------------------------------------------------------------------
def _sparse_from_dense(topo):
    rows = [topo.neighbors(v) for v in range(topo.n)]
    indptr = np.concatenate(([0], np.cumsum([len(r) for r in rows])))
    nbr = np.array([u for r in rows for u in r], dtype=np.int64)
    nd = np.array(
        [float(topo.dist[v, u]) for v, r in enumerate(rows) for u in r]
    )
    return SparseTopology(topo.n, indptr, nbr, nd, topo.source, topo.members)


class TestSparseTopology:
    def test_queries_match_dense(self):
        topo = random_connected_topology(5, n_min=10, n_max=16)
        sp = _sparse_from_dense(topo)
        assert sp.members == topo.members
        for v in range(topo.n):
            assert sp.neighbors(v) == topo.neighbors(v)
            assert sp.degree(v) == topo.degree(v)
            assert sp.neighbor_distances(v) == topo.neighbor_distances(v)
            for u in range(topo.n):
                assert sp.has_edge(v, u) == topo.has_edge(v, u)
                assert sp.dist[v, u] == topo.dist[v, u]
            for radius in (0.0, 50.0, 150.0, 400.0):
                assert sp.count_within(v, radius) == topo.count_within(v, radius)
                assert sp.neighbors_within(v, radius) == topo.neighbors_within(
                    v, radius
                )
        assert sp.is_connected() == topo.is_connected()
        assert list(sp.bfs_hops()) == list(topo.bfs_hops())

    def test_infinity_matches_dense(self):
        topo = random_connected_topology(6, n_min=8, n_max=12)
        sp = _sparse_from_dense(topo)
        for name in METRIC_NAMES:
            m = metric_by_name(name, EXAMPLE_RADIO)
            assert m.infinity(sp) == m.infinity(topo)

    def test_trajectories_match_dense(self):
        """The same graph behind either topology class stabilizes the
        same way, on both engines."""
        topo = random_connected_topology(7, n_min=8, n_max=12)
        sp = _sparse_from_dense(topo)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        init = arbitrary_states(topo, m, np.random.default_rng(3))
        ref = RoundEngine(
            topo, m, daemon="central", incremental=True
        ).run(list(init), max_rounds=MAX_ROUNDS)
        for engine in ("object", "array"):
            got = engine_for(
                sp, m, "central", incremental=True, engine=engine
            ).run(list(init), max_rounds=MAX_ROUNDS)
            assert_same_trajectory(ref, got)

    def test_random_geometric_is_valid(self):
        sp = SparseTopology.random_geometric(
            300, side=600.0, radius=80.0, seed=4
        )
        assert sp.n == 300
        assert sp.source in sp.members
        # symmetry: every directed edge has its mirror with equal length
        for v in range(sp.n):
            for u, d in sp.neighbor_distances(v):
                assert sp.dist[u, v] == d

    def test_from_positions_matches_dense(self):
        """Same coordinates, same unit-disk rule: identical edge sets,
        distances within floating-point rounding (the sparse direct form
        is tighter than the dense ``|x|^2+|y|^2-2x.y`` identity, so exact
        bit-equality is deliberately NOT promised — see
        ``_geometric_edges``)."""
        rng = np.random.default_rng(12)
        pos = rng.uniform(0.0, 600.0, size=(300, 2))
        members = range(0, 300, 5)
        dt = Topology.from_positions(pos, 70.0, 0, members)
        sp = SparseTopology.from_positions(pos, 70.0, 0, members)
        assert sp.members == dt.members
        for v in range(300):
            assert sp.neighbors(v) == sorted(dt.neighbors(v))
            for u in sp.neighbors(v):
                assert sp.dist[v, u] == pytest.approx(
                    dt.dist[v, u], abs=1e-6
                )

    def test_from_positions_shift_invariant(self):
        rng = np.random.default_rng(13)
        pos = rng.uniform(0.0, 400.0, size=(200, 2))
        a = SparseTopology.from_positions(pos, 60.0, 0, [1, 2])
        b = SparseTopology.from_positions(pos - 987.25, 60.0, 0, [1, 2])
        assert np.array_equal(a._indptr, b._indptr)
        assert np.array_equal(a._nbr, b._nbr)


# ----------------------------------------------------------------------
# The topology scenario knob
# ----------------------------------------------------------------------
class TestTopologyKnob:
    def test_sparse_runs_on_rounds_backend(self):
        from repro.experiments.backends import backend_by_name
        from repro.experiments.config import ScenarioConfig

        b = backend_by_name("rounds")
        base = ScenarioConfig.quick(
            backend="rounds", protocol="ss-spst", daemon="central",
            n_nodes=30,
        )
        ra = b.record_from(b.run(base))
        rb = b.record_from(
            b.run(base.replace(topology="sparse", engine="array"))
        )
        # Same scenario coordinates; the representations may round
        # near-coincident pair distances differently, so assert the
        # structural outcome, not bitwise equality.
        assert rb["summary"]["converged"] == ra["summary"]["converged"] == 1
        assert rb["summary"]["connected"] == ra["summary"]["connected"]

    def test_sparse_is_not_hash_neutral(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.store import _hash_payload, config_key

        base = ScenarioConfig.quick(backend="rounds", protocol="ss-spst")
        assert "topology" not in _hash_payload(base)
        assert config_key(base) != config_key(base.replace(topology="sparse"))

    def test_des_backend_rejects_topology_knob(self):
        from repro.experiments.config import ScenarioConfig

        with pytest.raises(ValueError, match="rounds-backend knob"):
            ScenarioConfig.quick(topology="sparse")

    def test_unknown_topology_rejected(self):
        from repro.experiments.config import ScenarioConfig

        with pytest.raises(ValueError, match="unknown topology"):
            ScenarioConfig.quick(backend="rounds", topology="csr")


# ----------------------------------------------------------------------
# engine_for plumbing
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_names(self):
        topo = random_connected_topology(1)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        assert isinstance(
            engine_for(topo, m, "central", engine="array"), ArrayRoundEngine
        )
        obj = engine_for(topo, m, "central", engine="object")
        assert type(obj) is RoundEngine

    def test_unknown_engine_rejected(self):
        topo = random_connected_topology(1)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        with pytest.raises(ValueError, match="unknown engine"):
            engine_for(topo, m, "central", engine="bogus")

    def test_engine_selection_requires_daemon_name(self):
        topo = random_connected_topology(1)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        inst = RoundEngine(topo, m, daemon="central")
        with pytest.raises(ValueError, match="daemon given by name"):
            engine_for(topo, m, inst, engine="array")

    def test_config_knob_reaches_rounds_backend(self):
        from repro.experiments.backends import backend_by_name
        from repro.experiments.config import ScenarioConfig

        b = backend_by_name("rounds")
        base = ScenarioConfig.quick(
            backend="rounds", protocol="ss-spst-e", engine="object"
        )
        ra = b.record_from(b.run(base))
        rb = b.record_from(b.run(base.replace(engine="array")))
        sa, sb = ra["summary"], rb["summary"]
        # Bit-identity covers results; chain_steps counts *scalar* chain
        # work, which the vector path mostly avoids — excluded from the
        # contract (same carve-out as full vs incremental).
        for key in ("rounds", "moves", "evaluations", "converged", "total_cost"):
            if key in sa:
                assert sa[key] == sb[key], key

    def test_des_backend_rejects_engine_knob(self):
        from repro.experiments.config import ScenarioConfig

        with pytest.raises(ValueError, match="rounds-backend knob"):
            ScenarioConfig.quick(engine="array")


# ----------------------------------------------------------------------
# Moderate-scale sanity: the point of the array engine
# ----------------------------------------------------------------------
def test_array_engine_stabilizes_thousand_node_sparse():
    sp = SparseTopology.random_geometric(1000, side=1000.0, radius=80.0, seed=2)
    m = metric_by_name("tx", EXAMPLE_RADIO)
    res = engine_for(
        sp, m, "synchronous", incremental=True, engine="array"
    ).run(fresh_states(sp, m))
    assert res.converged
    assert is_legitimate(sp, m, res.states)
