"""Array engine parity and scale-invariance properties.

The vectorized :class:`~repro.core.array_engine.ArrayRoundEngine`'s whole
contract is **bit-identity** with the scalar :class:`RoundEngine` — not
"close enough": states, rounds, convergence verdict, cost history and
move counts must match exactly, under every daemon, both evaluation
modes, and from arbitrary illegitimate states (the object engine is the
oracle; see ``core/array_engine.py`` for why exactness is achievable).
Alongside: the scale-invariance property both engines must satisfy
(uniform energy rescaling changes neither the chosen tree nor the
convergence verdict — the regression behind ``COST_TOL``'s relative
semantics, see ``docs/convergence.md``), the sparse topology's
equivalence to the dense one, and the ``engine=`` plumbing.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DAEMON_NAMES,
    ArrayRoundEngine,
    NodeState,
    RoundEngine,
    arbitrary_states,
    engine_for,
    fresh_states,
    is_legitimate,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.core.metrics import METRIC_NAMES
from repro.energy.radio import FirstOrderRadioModel
from repro.graph import SparseTopology, Topology

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAX_ROUNDS = 150


def random_connected_topology(seed, n_min=5, n_max=12):
    rng = np.random.default_rng(seed)
    for _ in range(50):
        n = int(rng.integers(n_min, n_max + 1))
        pos = rng.random((n, 2)) * 400.0
        members = [int(x) for x in rng.choice(n, size=max(2, n // 3), replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            return topo
    pytest.skip("could not sample a connected topology")


def pair(topo, metric, daemon, incremental, seed=9):
    """Matched (object, array) engines with identical daemon rng streams."""
    obj = RoundEngine(
        topo, metric, daemon=daemon, incremental=incremental,
        rng=np.random.default_rng(seed),
    )
    arr = ArrayRoundEngine(
        topo, metric, daemon=daemon, incremental=incremental,
        rng=np.random.default_rng(seed),
    )
    return obj, arr


def assert_same_trajectory(a, b):
    assert a.states == b.states  # exact, not approx: bit-identical
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cost_history == b.cost_history
    assert a.moves == b.moves


# ----------------------------------------------------------------------
# The tentpole contract: the object engine is the bit-identity oracle
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000), metric_name=st.sampled_from(METRIC_NAMES))
@pytest.mark.parametrize("incremental", [False, True])
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_array_engine_bit_identical_any_daemon(daemon, incremental, metric_name, seed):
    """Every daemon x every metric x both modes, from arbitrary
    illegitimate states (parent cycles, garbage costs): the array engine
    replays the object engine exactly."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))
    obj, arr = pair(topo, m, daemon, incremental)
    assert_same_trajectory(
        obj.run(list(init), max_rounds=MAX_ROUNDS),
        arr.run(list(init), max_rounds=MAX_ROUNDS),
    )


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000), metric_name=st.sampled_from(METRIC_NAMES))
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_array_engine_bit_identical_warm_start(daemon, metric_name, seed):
    """run_perturbed parity: settle with the object engine, corrupt a few
    nodes, and let both engines absorb the same faults."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    settled = RoundEngine(
        topo, m, daemon=daemon, incremental=True, rng=np.random.default_rng(9)
    ).run(fresh_states(topo, m), max_rounds=MAX_ROUNDS)
    if not settled.converged:  # adversarial may legitimately stall on F
        return
    rng = np.random.default_rng(seed + 7)
    faults = []
    for v in rng.choice(topo.n, size=max(1, topo.n // 4), replace=False):
        v = int(v)
        if v == topo.source:
            continue
        nbrs = topo.neighbors(v)
        u = int(rng.choice(nbrs)) if nbrs else None
        ns = NodeState(
            parent=u,
            cost=float(rng.random() * 1e-5),
            hop=int(rng.integers(0, topo.n)),
        )
        if settled.states[v] != ns:
            faults.append((v, ns))
    if not faults:
        return
    obj, arr = pair(topo, m, daemon, True)
    assert_same_trajectory(
        obj.run_perturbed(list(settled.states), faults, max_rounds=MAX_ROUNDS),
        arr.run_perturbed(list(settled.states), faults, max_rounds=MAX_ROUNDS),
    )


# ----------------------------------------------------------------------
# Scale invariance: per-bit energy units are arbitrary, so uniformly
# rescaling every radio constant must change neither the tree nor the
# convergence verdict — on either engine (the satellite-1 regression,
# generalized across metrics x daemons x engines)
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(
    seed=st.integers(0, 100_000),
    metric_name=st.sampled_from(METRIC_NAMES),
    scale=st.sampled_from([1e-3, 0.5, 2.0, 1e3]),
)
@pytest.mark.parametrize("engine", ["object", "array"])
@pytest.mark.parametrize("daemon", ["synchronous", "central", "randomized"])
def test_rescaling_invariant_tree_and_verdict(daemon, engine, metric_name, scale, seed):
    topo = random_connected_topology(seed)
    r1 = EXAMPLE_RADIO
    r2 = FirstOrderRadioModel(
        e_elec=r1.e_elec * scale,
        e_rx=r1.e_rx * scale,
        eps_amp=r1.eps_amp * scale,
        alpha=r1.alpha,
        max_range=r1.max_range,
        d_floor=r1.d_floor,
    )
    results = []
    for radio in (r1, r2):
        m = metric_by_name(metric_name, radio)
        eng = engine_for(
            topo, m, daemon, incremental=True, engine=engine,
            rng=np.random.default_rng(seed),
        )
        results.append(eng.run(fresh_states(topo, m), max_rounds=300))
    res1, res2 = results
    assert res1.converged == res2.converged
    assert res1.rounds == res2.rounds
    assert [s.parent for s in res1.states] == [s.parent for s in res2.states]


# ----------------------------------------------------------------------
# Sparse topology: same graph, same answers
# ----------------------------------------------------------------------
def _sparse_from_dense(topo):
    rows = [topo.neighbors(v) for v in range(topo.n)]
    indptr = np.concatenate(([0], np.cumsum([len(r) for r in rows])))
    nbr = np.array([u for r in rows for u in r], dtype=np.int64)
    nd = np.array(
        [float(topo.dist[v, u]) for v, r in enumerate(rows) for u in r]
    )
    return SparseTopology(topo.n, indptr, nbr, nd, topo.source, topo.members)


class TestSparseTopology:
    def test_queries_match_dense(self):
        topo = random_connected_topology(5, n_min=10, n_max=16)
        sp = _sparse_from_dense(topo)
        assert sp.members == topo.members
        for v in range(topo.n):
            assert sp.neighbors(v) == topo.neighbors(v)
            assert sp.degree(v) == topo.degree(v)
            assert sp.neighbor_distances(v) == topo.neighbor_distances(v)
            for u in range(topo.n):
                assert sp.has_edge(v, u) == topo.has_edge(v, u)
                assert sp.dist[v, u] == topo.dist[v, u]
            for radius in (0.0, 50.0, 150.0, 400.0):
                assert sp.count_within(v, radius) == topo.count_within(v, radius)
                assert sp.neighbors_within(v, radius) == topo.neighbors_within(
                    v, radius
                )
        assert sp.is_connected() == topo.is_connected()
        assert list(sp.bfs_hops()) == list(topo.bfs_hops())

    def test_infinity_matches_dense(self):
        topo = random_connected_topology(6, n_min=8, n_max=12)
        sp = _sparse_from_dense(topo)
        for name in METRIC_NAMES:
            m = metric_by_name(name, EXAMPLE_RADIO)
            assert m.infinity(sp) == m.infinity(topo)

    def test_trajectories_match_dense(self):
        """The same graph behind either topology class stabilizes the
        same way, on both engines."""
        topo = random_connected_topology(7, n_min=8, n_max=12)
        sp = _sparse_from_dense(topo)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        init = arbitrary_states(topo, m, np.random.default_rng(3))
        ref = RoundEngine(
            topo, m, daemon="central", incremental=True
        ).run(list(init), max_rounds=MAX_ROUNDS)
        for engine in ("object", "array"):
            got = engine_for(
                sp, m, "central", incremental=True, engine=engine
            ).run(list(init), max_rounds=MAX_ROUNDS)
            assert_same_trajectory(ref, got)

    def test_random_geometric_is_valid(self):
        sp = SparseTopology.random_geometric(
            300, side=600.0, radius=80.0, seed=4
        )
        assert sp.n == 300
        assert sp.source in sp.members
        # symmetry: every directed edge has its mirror with equal length
        for v in range(sp.n):
            for u, d in sp.neighbor_distances(v):
                assert sp.dist[u, v] == d


# ----------------------------------------------------------------------
# engine_for plumbing
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_names(self):
        topo = random_connected_topology(1)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        assert isinstance(
            engine_for(topo, m, "central", engine="array"), ArrayRoundEngine
        )
        obj = engine_for(topo, m, "central", engine="object")
        assert type(obj) is RoundEngine

    def test_unknown_engine_rejected(self):
        topo = random_connected_topology(1)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        with pytest.raises(ValueError, match="unknown engine"):
            engine_for(topo, m, "central", engine="bogus")

    def test_engine_selection_requires_daemon_name(self):
        topo = random_connected_topology(1)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        inst = RoundEngine(topo, m, daemon="central")
        with pytest.raises(ValueError, match="daemon given by name"):
            engine_for(topo, m, inst, engine="array")

    def test_config_knob_reaches_rounds_backend(self):
        from repro.experiments.backends import backend_by_name
        from repro.experiments.config import ScenarioConfig

        b = backend_by_name("rounds")
        base = ScenarioConfig.quick(
            backend="rounds", protocol="ss-spst-e", engine="object"
        )
        ra = b.record_from(b.run(base))
        rb = b.record_from(b.run(base.replace(engine="array")))
        sa, sb = ra["summary"], rb["summary"]
        # Bit-identity covers results; chain_steps counts *scalar* chain
        # work, which the vector path mostly avoids — excluded from the
        # contract (same carve-out as full vs incremental).
        for key in ("rounds", "moves", "evaluations", "converged", "total_cost"):
            if key in sa:
                assert sa[key] == sb[key], key

    def test_des_backend_rejects_engine_knob(self):
        from repro.experiments.config import ScenarioConfig

        with pytest.raises(ValueError, match="rounds-backend knob"):
            ScenarioConfig.quick(engine="array")


# ----------------------------------------------------------------------
# Moderate-scale sanity: the point of the array engine
# ----------------------------------------------------------------------
def test_array_engine_stabilizes_thousand_node_sparse():
    sp = SparseTopology.random_geometric(1000, side=1000.0, radius=80.0, seed=2)
    m = metric_by_name("tx", EXAMPLE_RADIO)
    res = engine_for(
        sp, m, "synchronous", incremental=True, engine="array"
    ).run(fresh_states(sp, m))
    assert res.converged
    assert is_legitimate(sp, m, res.states)
