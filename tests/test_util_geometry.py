"""Tests for repro.util.geometry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.util.geometry import (
    Arena,
    clamp_point,
    distance,
    neighbors_within,
    pairwise_distances,
    unit_vector,
)


class TestArena:
    def test_default_dimensions_match_paper(self):
        a = Arena()
        assert a.width == 750.0 and a.height == 750.0

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Arena(0.0, 100.0)
        with pytest.raises(ValueError):
            Arena(100.0, -5.0)

    def test_contains(self):
        a = Arena(100.0, 50.0)
        pts = np.array([[0, 0], [100, 50], [50, 25], [101, 25], [-1, 25], [50, 51]])
        assert a.contains(pts).tolist() == [True, True, True, False, False, False]

    def test_contains_single_point(self):
        a = Arena(10, 10)
        assert a.contains(np.array([5.0, 5.0])).all()

    def test_sample_points_inside(self):
        a = Arena(100.0, 200.0)
        pts = a.sample_points(500, np.random.default_rng(0))
        assert pts.shape == (500, 2)
        assert a.contains(pts).all()

    def test_diagonal(self):
        assert Arena(3.0, 4.0).diagonal == pytest.approx(5.0)


class TestDistances:
    def test_distance_basic(self):
        assert distance(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_pairwise_matches_naive(self):
        rng = np.random.default_rng(1)
        pts = rng.random((40, 2)) * 100
        d = pairwise_distances(pts)
        for i in range(0, 40, 7):
            for j in range(0, 40, 5):
                expected = np.hypot(*(pts[i] - pts[j]))
                assert d[i, j] == pytest.approx(expected, abs=1e-9)

    def test_pairwise_symmetric_zero_diagonal(self):
        pts = np.random.default_rng(2).random((25, 2)) * 10
        d = pairwise_distances(pts)
        assert np.allclose(d, d.T)
        assert np.all(np.diag(d) == 0.0)

    def test_pairwise_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            pairwise_distances(np.zeros((3, 3)))

    def test_neighbors_within(self):
        pts = np.array([[0.0, 0.0], [1.0, 0.0], [5.0, 0.0]])
        adj = neighbors_within(pts, 2.0)
        assert adj[0, 1] and adj[1, 0]
        assert not adj[0, 2] and not adj[2, 0]
        assert not adj.diagonal().any()

    def test_neighbors_within_requires_positive_radius(self):
        with pytest.raises(ValueError):
            neighbors_within(np.zeros((2, 2)), 0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        pts=arrays(
            np.float64,
            (10, 2),
            elements=st.floats(0, 1000, allow_nan=False, allow_infinity=False),
        )
    )
    def test_pairwise_triangle_inequality(self, pts):
        d = pairwise_distances(pts)
        # Check a sample of triples for the triangle inequality.
        for i, j, k in [(0, 1, 2), (3, 4, 5), (6, 7, 8), (0, 5, 9)]:
            assert d[i, k] <= d[i, j] + d[j, k] + 1e-6


class TestHelpers:
    def test_clamp_point(self):
        a = Arena(10.0, 10.0)
        assert clamp_point(np.array([-5.0, 15.0]), a).tolist() == [0.0, 10.0]
        assert clamp_point(np.array([5.0, 5.0]), a).tolist() == [5.0, 5.0]

    def test_unit_vector(self):
        direction, length = unit_vector(np.zeros(2), np.array([0.0, 2.0]))
        assert length == pytest.approx(2.0)
        assert direction.tolist() == [0.0, 1.0]

    def test_unit_vector_zero_length(self):
        direction, length = unit_vector(np.ones(2), np.ones(2))
        assert length == 0.0
        assert direction.tolist() == [0.0, 0.0]
