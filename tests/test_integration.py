"""End-to-end integration tests: full small scenarios for every protocol,
cross-cutting conservation invariants, and the fault-injection paths."""

import numpy as np
import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network, run_scenario
from repro.metrics.hub import MetricsHub
from repro.protocols.registry import PROTOCOL_NAMES, make_agent_factory
from repro.traffic.cbr import CbrSource

QUICK = dict(sim_time=30.0, group_size=8, n_nodes=25, rate_kbps=16.0, traffic_start=6.0)


@pytest.mark.parametrize("protocol", PROTOCOL_NAMES)
def test_every_protocol_runs_and_delivers(protocol):
    cfg = ScenarioConfig.quick(protocol=protocol, seed=6, v_max=2.0, **QUICK)
    result = run_scenario(cfg)
    s = result.summary
    assert s.data_originated > 50
    assert s.pdr > 0.2, f"{protocol} delivered almost nothing"
    assert s.total_energy_j > 0
    assert s.avg_delay_ms > 0


@pytest.mark.parametrize("protocol", ["ss-spst", "ss-spst-e", "maodv", "odmrp"])
def test_delivery_accounting_consistent(protocol):
    cfg = ScenarioConfig.quick(protocol=protocol, seed=8, v_max=2.0, **QUICK)
    result = run_scenario(cfg)
    s = result.summary
    expected = s.data_originated * (cfg.group_size - 1)
    assert 0 <= s.data_delivered <= expected
    assert s.pdr == pytest.approx(s.data_delivered / expected)


def test_energy_conservation_across_buckets():
    """Network total equals the sum over nodes of all six ledger buckets,
    and medium-level sends match hub byte accounting."""
    cfg = ScenarioConfig.quick(protocol="ss-spst-e", seed=9, v_max=2.0, **QUICK)
    sim, net = build_network(cfg)
    hub = MetricsHub(n_receivers=len(net.receivers))
    hub.set_packet_size_hint(cfg.packet_bytes)
    net.hub = hub
    net.attach_agents(make_agent_factory("ss-spst-e"))
    net.start()
    CbrSource(net, rate_kbps=cfg.rate_kbps, packet_bytes=cfg.packet_bytes,
              start_time=cfg.traffic_start).start()
    sim.run(until=cfg.sim_time)
    total = net.total_energy()
    by_bucket = sum(nd.ledger.snapshot().total for nd in net.nodes)
    assert total == pytest.approx(by_bucket)
    assert hub.control_bytes_tx > 0 and hub.data_bytes_tx > 0


def test_overhearing_energy_is_nonzero_for_ss_spst():
    """The discard bucket — the paper's motivating quantity — must be
    populated: non-intended nodes pay for every overheard frame."""
    cfg = ScenarioConfig.quick(protocol="ss-spst", seed=10, v_max=2.0, **QUICK)
    sim, net = build_network(cfg)
    hub = MetricsHub(n_receivers=len(net.receivers))
    net.hub = hub
    net.attach_agents(make_agent_factory("ss-spst"))
    net.start()
    CbrSource(net, rate_kbps=cfg.rate_kbps, packet_bytes=cfg.packet_bytes,
              start_time=cfg.traffic_start).start()
    sim.run(until=cfg.sim_time)
    discard = sum(nd.ledger.snapshot().total_discard for nd in net.nodes)
    assert discard > 0.0


def test_ss_spst_e_discards_less_than_hop_variant():
    """The headline effect, end to end: for identical scenarios SS-SPST-E
    wastes less discard energy per delivered packet than SS-SPST."""
    res = {}
    for protocol in ("ss-spst", "ss-spst-e"):
        cfg = ScenarioConfig.quick(protocol=protocol, seed=11, v_max=2.0, **QUICK)
        sim, net = build_network(cfg)
        hub = MetricsHub(n_receivers=len(net.receivers))
        net.hub = hub
        net.attach_agents(make_agent_factory(protocol))
        net.start()
        CbrSource(net, rate_kbps=cfg.rate_kbps, packet_bytes=cfg.packet_bytes,
                  start_time=cfg.traffic_start).start()
        sim.run(until=cfg.sim_time)
        discard = sum(nd.ledger.snapshot().discard_data for nd in net.nodes)
        res[protocol] = discard / max(hub.data_delivered, 1)
    assert res["ss-spst-e"] < res["ss-spst"]


def test_battery_depletion_injects_faults():
    """Finite batteries kill nodes mid-run; the protocol must keep running
    and the dead node must stop transmitting."""
    cfg = ScenarioConfig.quick(protocol="ss-spst", seed=12, v_max=2.0, **QUICK)
    sim, net = build_network(cfg)
    hub = MetricsHub(n_receivers=len(net.receivers))
    net.hub = hub
    net.attach_agents(make_agent_factory("ss-spst"))
    net.start()
    CbrSource(net, rate_kbps=cfg.rate_kbps, packet_bytes=cfg.packet_bytes,
              start_time=cfg.traffic_start).start()
    # Give one relay-ish node a tiny battery.
    victim = net.nodes[5]
    victim.battery.capacity_j = 0.05
    victim.battery.remaining_j = 0.05
    sim.run(until=cfg.sim_time)
    assert not victim.alive
    # The rest of the network survived and kept delivering.
    assert hub.data_delivered > 0


def test_zero_loss_static_tree_delivers_everything():
    """Sanity ceiling: static nodes, no random loss, tiny network ->
    (near-)perfect delivery once stabilized."""
    cfg = ScenarioConfig.quick(
        protocol="ss-spst", seed=13, v_max=0.1, v_min=0.05, loss_prob=0.0,
        sim_time=40.0, group_size=5, n_nodes=12, rate_kbps=8.0, traffic_start=10.0,
        arena_w=400.0, arena_h=400.0,  # dense enough to be connected
    )
    result = run_scenario(cfg)
    assert result.summary.pdr > 0.9
