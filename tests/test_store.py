"""Result-store layer: backends, parity, migration, concurrency.

The contracts pinned here (see docs/campaigns.md):

* ``open_store`` dispatch and side-effect-free probing;
* :class:`JsonDirStore` stays byte-compatible with the pre-refactor
  ``ResultCache`` layout (same filenames, same file contents), with the
  crash-safety discipline (fsync + atomic replace, stale-tmp sweeping);
* :class:`SqliteStore` holds the same records behind the same
  load/store semantics (WAL journaling, schema-versioned rows, batched
  writes, reopen persistence, miss-never-error validation);
* ``migrate`` ingests a v1/v2 JSON cache dir losslessly: the migrated
  store resumes the campaign with 100% hits and identical aggregates;
* two campaign invocations racing on one store — same shard or split
  shards, JSON dir or SQLite — lose no records, double none, and
  aggregate identically to a serial reference run.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.experiments.campaign import (
    CampaignSpec,
    collect_campaign,
    run_campaign,
    _execute,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.store import (
    JsonDirStore,
    ResultCache,
    SqliteStore,
    config_key,
    migrate_json_dir,
    open_store,
    probe_store,
    store_location,
)

#: rounds-backend configs stabilize in milliseconds at this scale, so
#: store tests stay fast while running the full campaign machinery
FAST_ROUNDS = dict(backend="rounds", n_nodes=16, group_size=4)


def rounds_base(**kw) -> ScenarioConfig:
    merged = dict(FAST_ROUNDS)
    merged.update(kw)
    return ScenarioConfig.quick(**merged)


def rounds_spec(name="store-test", seeds=(1, 2), **kw) -> CampaignSpec:
    return CampaignSpec.from_mapping(
        name=name,
        base=rounds_base(**kw),
        protocols=("ss-spst", "ss-spst-e"),
        seeds=seeds,
    )


@pytest.fixture(params=["json", "sqlite"])
def store_spec(request, tmp_path) -> str:
    """One spec string per store backend, both over a fresh tmp dir."""
    if request.param == "sqlite":
        return f"sqlite:{tmp_path / 'results.sqlite'}"
    return str(tmp_path / "records")


def _record_for(config: ScenarioConfig) -> dict:
    return _execute(config)


# ----------------------------------------------------------------------
# Resolution
# ----------------------------------------------------------------------
class TestOpenStore:
    def test_bare_path_is_json_dir(self, tmp_path):
        store = open_store(str(tmp_path / "cache"))
        assert isinstance(store, JsonDirStore)

    def test_sqlite_by_suffix_and_prefix(self, tmp_path):
        for spec in (
            str(tmp_path / "a.sqlite"),
            str(tmp_path / "b.db"),
            f"sqlite:{tmp_path / 'c.anything'}",
        ):
            store = open_store(spec)
            assert isinstance(store, SqliteStore)
            store.close()

    def test_explicit_json_prefix(self, tmp_path):
        store = open_store(f"json:{tmp_path / 'd'}")
        assert isinstance(store, JsonDirStore)

    def test_instance_passthrough(self, tmp_path):
        store = JsonDirStore(str(tmp_path / "e"))
        assert open_store(store) is store

    def test_probe_does_not_create(self, tmp_path):
        for spec in (
            str(tmp_path / "absent-dir"),
            str(tmp_path / "absent.sqlite"),
        ):
            assert probe_store(spec) is None
            assert not os.path.exists(store_location(spec))

    def test_probe_opens_existing(self, tmp_path):
        path = tmp_path / "present"
        path.mkdir()
        assert isinstance(probe_store(str(path)), JsonDirStore)


# ----------------------------------------------------------------------
# JSON dir store: the historical layout, hardened
# ----------------------------------------------------------------------
class TestJsonDirStore:
    def test_resultcache_is_the_json_store(self, tmp_path):
        # the historical name keeps working (tests/notebooks import it)
        cache = ResultCache(str(tmp_path))
        assert isinstance(cache, JsonDirStore)

    def test_layout_matches_pre_refactor_bytes(self, tmp_path):
        """A stored record is the exact file the old ResultCache wrote:
        ``<config_key>.json`` holding sorted-keys JSON."""
        cfg = rounds_base(seed=7, protocol="ss-spst")
        record = _record_for(cfg)
        store = JsonDirStore(str(tmp_path))
        path = store.store(cfg, record)
        assert os.path.basename(path) == f"{config_key(cfg)}.json"
        with open(path, encoding="utf-8") as fh:
            assert fh.read() == json.dumps(record, sort_keys=True)
        assert store.load(cfg) == record

    def test_no_tmp_debris_after_store(self, tmp_path):
        store = JsonDirStore(str(tmp_path))
        cfg = rounds_base(seed=3, protocol="ss-spst")
        store.store(cfg, _record_for(cfg))
        assert not [n for n in os.listdir(tmp_path) if ".tmp." in n]

    def test_stale_tmps_swept_on_open(self, tmp_path):
        stale = tmp_path / "deadbeef.json.tmp.12345"
        stale.write_text("{trunc")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = tmp_path / "cafebabe.json.tmp.6789"
        fresh.write_text("{trunc")
        JsonDirStore(str(tmp_path))
        assert not stale.exists()  # killed writer's debris
        assert fresh.exists()  # maybe another live writer's in-flight file

    def test_truncated_record_is_a_miss(self, tmp_path):
        store = JsonDirStore(str(tmp_path))
        cfg = rounds_base(seed=5, protocol="ss-spst")
        with open(store.path(cfg), "w", encoding="utf-8") as fh:
            fh.write('{"schema": 2, "config"')  # a torn non-atomic write
        assert store.load(cfg) is None


# ----------------------------------------------------------------------
# SQLite store
# ----------------------------------------------------------------------
class TestSqliteStore:
    def test_wal_mode(self, tmp_path):
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        store.close()

    def test_roundtrip_and_reopen(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        cfg = rounds_base(seed=11, protocol="ss-spst")
        record = _record_for(cfg)
        with SqliteStore(path) as store:
            store.store(cfg, record)
        with SqliteStore(path) as store:  # records survive the process
            assert store.load(cfg) == record
            assert store.run_count() == 1
            assert store.keys() == [config_key(cfg)]

    def test_validation_misses(self, tmp_path):
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        cfg = rounds_base(seed=13, protocol="ss-spst")
        record = _record_for(cfg)

        alien = dict(record, schema=99)  # future schema: miss, not error
        store.put(config_key(cfg), alien)
        assert store.load(cfg) is None

        wrong_backend = dict(record, backend="des")
        store.put(config_key(cfg), wrong_backend)
        assert store.load(cfg) is None

        edited = dict(record, config=dict(record["config"], seed=999))
        store.put(config_key(cfg), edited)  # hand-edited: identity fails
        assert store.load(cfg) is None

        store.put(config_key(cfg), record)
        assert store.load(cfg) == record
        store.close()

    def test_duplicate_put_keeps_one_row(self, tmp_path):
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        cfg = rounds_base(seed=17, protocol="ss-spst")
        record = _record_for(cfg)
        for _ in range(3):  # racing shards / stolen re-runs collapse
            store.put(config_key(cfg), record)
        assert store.run_count() == 1
        store.close()

    def test_batched_writes_flush_on_read_and_close(self, tmp_path):
        path = str(tmp_path / "s.sqlite")
        store = SqliteStore(path, batch_size=64)
        cfg = rounds_base(seed=19, protocol="ss-spst")
        record = _record_for(cfg)
        store.store(cfg, record)
        assert store.load(cfg) == record  # reads see buffered writes
        cfg2 = rounds_base(seed=23, protocol="ss-spst")
        store.store(cfg2, _record_for(cfg2))
        store.close()  # close drains the batch durably
        with SqliteStore(path) as reopened:
            assert reopened.run_count() == 2

    def test_put_many_is_one_batch(self, tmp_path):
        store = SqliteStore(str(tmp_path / "s.sqlite"))
        cfgs = [rounds_base(seed=s, protocol="ss-spst") for s in (29, 31, 37)]
        items = [(config_key(c), _record_for(c)) for c in cfgs]
        assert store.put_many(items) == 3
        assert store.run_count() == 3
        store.close()


# ----------------------------------------------------------------------
# Campaign parity across stores
# ----------------------------------------------------------------------
class TestCampaignParity:
    def test_cold_then_warm(self, store_spec):
        spec = rounds_spec()
        cold = run_campaign(spec, store=store_spec)
        assert cold.executed == spec.size()
        warm = run_campaign(spec, store=store_spec)
        assert (warm.executed, warm.cache_hits) == (0, spec.size())
        for a, b in zip(cold.results, warm.results):
            assert a.summary == b.summary

    def test_shard_split_reassembles(self, store_spec):
        spec = rounds_spec()
        n0 = run_campaign(spec, store=store_spec, shard=(0, 2))
        n1 = run_campaign(spec, store=store_spec, shard=(1, 2))
        assert n0.executed + n1.executed == spec.size()
        final = run_campaign(spec, store=store_spec)
        assert (final.executed, final.cache_hits) == (0, spec.size())

    def test_collect_campaign_never_executes(self, store_spec):
        spec = rounds_spec()
        run_campaign(spec, store=store_spec, shard=(0, 2))
        partial = collect_campaign(spec, store_spec)
        assert partial.executed == 0
        assert 0 < partial.cache_hits < spec.size()
        assert partial.skipped == spec.size() - partial.cache_hits

    def test_stores_agree_bit_for_bit(self, tmp_path):
        """The same campaign through both stores aggregates identically."""
        spec = rounds_spec()
        via_json = run_campaign(spec, store=str(tmp_path / "records"))
        via_sql = run_campaign(
            spec, store=f"sqlite:{tmp_path / 'results.sqlite'}"
        )
        extract = via_json.extractor("rounds")
        assert via_json.aggregate(extract) == via_sql.aggregate(extract)


# ----------------------------------------------------------------------
# Migration
# ----------------------------------------------------------------------
class TestMigration:
    def test_json_dir_to_sqlite_losslessly(self, tmp_path):
        spec = rounds_spec(seeds=(1, 2, 3))
        json_root = str(tmp_path / "records")
        reference = run_campaign(spec, store=json_root)

        # debris a real long-lived cache dir accumulates: must be
        # skipped, never migrated, never fatal
        (tmp_path / "records" / "notes.json").write_text('{"a": 1}')
        (tmp_path / "records" / "broken.json").write_text("{nope")

        dest = f"sqlite:{tmp_path / 'migrated.sqlite'}"
        migrated, skipped = migrate_json_dir(json_root, dest)
        assert migrated == spec.size()
        assert skipped == 2

        # acceptance: the migrated store resumes with 100% hits and
        # reports identical aggregates to the JSON original
        warm = run_campaign(spec, store=dest)
        assert (warm.executed, warm.cache_hits) == (0, spec.size())
        for metric in ("rounds", "moves", "evaluations"):
            extract = reference.extractor(metric)
            assert reference.aggregate(extract) == warm.aggregate(extract)

    def test_v1_des_record_survives_migration(self, tmp_path):
        """A v1-era record (schema 1, no backend key) migrates byte-for-
        byte and keeps loading through the SQLite store."""
        cfg = ScenarioConfig.quick(
            sim_time=12.0, n_nodes=16, group_size=4, seed=1,
            protocol="ss-spst",
        )
        record = _execute(cfg)
        v1 = {k: v for k, v in record.items() if k != "backend"}
        v1["schema"] = 1
        json_root = tmp_path / "records"
        json_root.mkdir()
        with open(json_root / f"{config_key(cfg)}.json", "w") as fh:
            json.dump(v1, fh, sort_keys=True)

        dest = f"sqlite:{tmp_path / 'migrated.sqlite'}"
        migrated, skipped = migrate_json_dir(str(json_root), dest)
        assert (migrated, skipped) == (1, 0)
        with open_store(dest) as store:
            loaded = store.load(cfg)
        assert loaded is not None
        assert loaded["schema"] == 1
        assert loaded["summary"] == v1["summary"]


# ----------------------------------------------------------------------
# Concurrent access
# ----------------------------------------------------------------------
def _race_child(args) -> int:
    """Child-process body: run one campaign invocation against the
    shared store (top level so the spawn start method could pickle it)."""
    spec, store_spec, shard = args
    result = run_campaign(spec, store=store_spec, shard=shard)
    return result.executed


class TestConcurrentAccess:
    def _race(self, store_spec, shards):
        spec = rounds_spec(seeds=(1, 2, 3))
        with multiprocessing.Pool(len(shards)) as pool:
            executed = pool.map(
                _race_child,
                [(spec, store_spec, shard) for shard in shards],
            )
        return spec, executed

    def test_racing_shards(self, store_spec):
        """Two shards writing one store concurrently: no lost records,
        no doubled records, aggregates identical to a serial run."""
        spec, executed = self._race(store_spec, [(0, 2), (1, 2)])
        assert sum(executed) == spec.size()

        with open_store(store_spec) as store:
            assert store.run_count() == spec.size()  # none lost or doubled
        assembled = collect_campaign(spec, store_spec)
        assert assembled.skipped == 0

        serial = run_campaign(rounds_spec(seeds=(1, 2, 3)))
        for metric in ("rounds", "moves"):
            extract = serial.extractor(metric)
            assert assembled.aggregate(extract) == serial.aggregate(extract)

    def test_racing_full_overlap(self, store_spec):
        """Worst case: two unsharded invocations of the whole campaign.
        Work is duplicated (both execute), records are not (idempotent
        keyed writes collapse the duplicates)."""
        spec, _ = self._race(store_spec, [None, None])
        with open_store(store_spec) as store:
            assert store.run_count() == spec.size()
        assembled = collect_campaign(spec, store_spec)
        assert assembled.skipped == 0
        serial = run_campaign(rounds_spec(seeds=(1, 2, 3)))
        extract = serial.extractor("rounds")
        assert assembled.aggregate(extract) == serial.aggregate(extract)
