"""Tests for repro.util.rng."""

from repro.util.rng import RngStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "mobility") == derive_seed(42, "mobility")

    def test_distinct_labels(self):
        assert derive_seed(42, "mobility") != derive_seed(42, "traffic")

    def test_distinct_roots(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_64_bit_range(self):
        s = derive_seed(7, "anything")
        assert 0 <= s < 2**64


class TestRngStreams:
    def test_same_name_same_generator(self):
        streams = RngStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_different_names_independent(self):
        streams = RngStreams(1)
        a = streams.get("a").random(4).tolist()
        b = streams.get("b").random(4).tolist()
        assert a != b

    def test_reproducible_across_instances(self):
        x = RngStreams(99).get("m").random(8)
        y = RngStreams(99).get("m").random(8)
        assert x.tolist() == y.tolist()

    def test_spawn_changes_family(self):
        parent = RngStreams(5)
        child = parent.spawn("node0")
        assert child.root_seed != parent.root_seed
        assert child.get("x").random() != parent.get("x").random()

    def test_spawn_deterministic(self):
        a = RngStreams(5).spawn("n").get("s").random(3)
        b = RngStreams(5).spawn("n").get("s").random(3)
        assert a.tolist() == b.tolist()

    def test_derive_composes_label_parts(self):
        # derive("mac", 3) must alias the stream the old call sites
        # addressed as get("mac.3") — migrated code keeps trajectories
        streams = RngStreams(7)
        assert streams.derive("mac", 3) is streams.get("mac.3")

    def test_derive_without_parts_is_get(self):
        streams = RngStreams(7)
        assert streams.derive("beacon") is streams.get("beacon")

    def test_derive_distinct_parts_independent(self):
        streams = RngStreams(7)
        a = streams.derive("maodv", 0).random(4).tolist()
        b = streams.derive("maodv", 1).random(4).tolist()
        assert a != b
