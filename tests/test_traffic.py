"""Tests for the CBR traffic source."""

import numpy as np
import pytest

from repro.energy import FirstOrderRadioModel
from repro.metrics.hub import MetricsHub
from repro.mobility import StaticPlacement
from repro.net import MacConfig, Network
from repro.protocols.registry import make_agent_factory
from repro.sim import Simulator
from repro.traffic import CbrSource
from repro.util.geometry import Arena
from repro.util.rng import RngStreams


def build():
    sim = Simulator()
    streams = RngStreams(3)
    mob = StaticPlacement(
        3, Arena(1000, 1000), positions=np.array([[0.0, 0.0], [200.0, 0.0], [400.0, 0.0]])
    )
    net = Network(sim, mob, FirstOrderRadioModel(e_elec=1e-6), streams, mac_config=MacConfig())
    net.set_group(source=0, members=[2])
    net.hub = MetricsHub(n_receivers=1)
    net.attach_agents(make_agent_factory("flooding"))
    net.start()
    return sim, net


class TestCbrSource:
    def test_rate_64kbps_512B_interval(self):
        sim, net = build()
        src = CbrSource(net, rate_kbps=64.0, packet_bytes=512)
        assert src.interval == pytest.approx(512 * 8 / 64_000.0)  # 64 ms

    def test_packet_count_matches_rate(self):
        sim, net = build()
        src = CbrSource(net, rate_kbps=64.0, packet_bytes=512, start_time=0.0)
        src.start()
        sim.run(until=1.0)
        # 64 kbps / 4096 bits = 15.625 packets/s.
        assert 14 <= src.packets_sent <= 16

    def test_start_time_respected(self):
        sim, net = build()
        src = CbrSource(net, rate_kbps=64.0, start_time=5.0)
        src.start()
        sim.run(until=4.9)
        assert src.packets_sent == 0
        sim.run(until=6.0)
        assert src.packets_sent > 0

    def test_stop(self):
        sim, net = build()
        src = CbrSource(net, rate_kbps=64.0, start_time=0.0)
        src.start()
        sim.run(until=0.5)
        count = src.packets_sent
        src.stop()
        sim.run(until=2.0)
        assert src.packets_sent == count

    def test_originations_reach_hub(self):
        sim, net = build()
        src = CbrSource(net, rate_kbps=64.0, start_time=0.0)
        src.start()
        sim.run(until=1.0)
        assert net.hub.data_originated == src.packets_sent

    def test_dead_source_stops_emitting(self):
        sim, net = build()
        src = CbrSource(net, rate_kbps=64.0, start_time=0.0)
        src.start()
        sim.run(until=0.5)
        net.nodes[0].alive = False
        before = net.hub.data_originated
        sim.run(until=1.5)
        assert net.hub.data_originated == before

    def test_invalid_params(self):
        sim, net = build()
        with pytest.raises(ValueError):
            CbrSource(net, rate_kbps=0.0)
        with pytest.raises(ValueError):
            CbrSource(net, rate_kbps=64.0, packet_bytes=0)
