"""Tests for repro.graph.topology."""

import numpy as np
import pytest

from repro.graph import Topology


def line_topology(n=4, spacing=100.0):
    """0 - 1 - 2 - ... in a line, edges between consecutive nodes only."""
    edges = {(i, i + 1): spacing for i in range(n - 1)}
    return Topology.from_edges(n, edges, source=0, members=range(n))


class TestConstruction:
    def test_from_edges(self):
        t = line_topology()
        assert t.n == 4
        assert t.has_edge(0, 1) and not t.has_edge(0, 2)
        assert t.dist[1, 2] == 100.0

    def test_from_positions(self):
        pos = np.array([[0.0, 0.0], [100.0, 0.0], [350.0, 0.0]])
        t = Topology.from_positions(pos, max_range=150.0, source=0, members=[2])
        assert t.has_edge(0, 1)
        assert not t.has_edge(0, 2)
        assert not t.has_edge(1, 2)  # 250 m > 150 m

    def test_source_always_member(self):
        t = Topology.from_edges(3, {(0, 1): 1.0, (1, 2): 1.0}, source=0, members=[2])
        assert 0 in t.members

    def test_symmetry_required(self):
        d = np.full((2, 2), np.inf)
        np.fill_diagonal(d, 0.0)
        d[0, 1] = 5.0  # asymmetric
        with pytest.raises(ValueError):
            Topology(d, 0, [])

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            Topology.from_edges(2, {(0, 1): -3.0}, source=0, members=[])

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Topology.from_edges(2, {(0, 0): 1.0}, source=0, members=[])

    def test_out_of_range_nodes_rejected(self):
        with pytest.raises(ValueError):
            Topology.from_edges(2, {(0, 1): 1.0}, source=5, members=[])
        with pytest.raises(ValueError):
            Topology.from_edges(2, {(0, 1): 1.0}, source=0, members=[9])


class TestQueries:
    def test_neighbors(self):
        t = line_topology()
        assert t.neighbors(0) == [1]
        assert sorted(t.neighbors(1)) == [0, 2]
        assert t.degree(1) == 2

    def test_neighbors_within(self):
        t = Topology.from_edges(
            3, {(0, 1): 50.0, (0, 2): 120.0}, source=0, members=[]
        )
        assert t.neighbors_within(0, 60.0) == [1]
        assert sorted(t.neighbors_within(0, 130.0)) == [1, 2]

    def test_neighbor_distances(self):
        t = line_topology()
        assert t.neighbor_distances(0) == [(1, 100.0)]

    def test_is_connected(self):
        assert line_topology().is_connected()
        t = Topology.from_edges(3, {(0, 1): 1.0}, source=0, members=[])
        assert not t.is_connected()

    def test_bfs_hops(self):
        t = line_topology(5)
        assert t.bfs_hops().tolist() == [0, 1, 2, 3, 4]

    def test_bfs_hops_unreachable(self):
        t = Topology.from_edges(3, {(0, 1): 1.0}, source=0, members=[])
        hops = t.bfs_hops()
        assert hops[2] == np.inf

    def test_to_networkx(self):
        g = line_topology().to_networkx()
        assert g.number_of_edges() == 3
        assert g[0][1]["weight"] == 100.0

    def test_non_members(self):
        t = Topology.from_edges(3, {(0, 1): 1.0, (1, 2): 1.0}, source=0, members=[1])
        assert t.non_members == {2}
