"""Tests for repro.util.ids."""

import pytest

from repro.util.ids import IdAllocator


class TestIdAllocator:
    def test_dense_from_zero(self):
        alloc = IdAllocator()
        assert [alloc.next() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_count(self):
        alloc = IdAllocator()
        assert alloc.count == 0
        alloc.next()
        alloc.next()
        assert alloc.count == 2

    def test_custom_start(self):
        alloc = IdAllocator(start=10)
        assert alloc.next() == 10
        assert alloc.count == 1

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            IdAllocator(start=-1)

    def test_reset(self):
        alloc = IdAllocator()
        alloc.next()
        alloc.reset()
        assert alloc.next() == 0
        assert alloc.count == 1
