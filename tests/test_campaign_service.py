"""Scheduler layer, streaming aggregation, and the campaign service.

Pins the contracts of the refactor's upper layers (docs/campaigns.md):

* the three schedulers (serial / pool / async) are interchangeable —
  same campaign, bit-identical aggregates;
* the async engine publishes worker heartbeats through the store,
  cancels gracefully mid-campaign (everything delivered so far is
  persisted), and a killed-and-resumed invocation converges to the
  same final table as an uninterrupted run;
* ``steal=True`` lets one shard claim and run other shards' leftovers,
  with claims contended through the store;
* streaming per-cell aggregation equals batch ``aggregate`` bit-for-bit
  in any arrival order (hypothesis property), because ``mean_ci`` *is*
  the Welford fold;
* the ``submit`` / ``status`` / ``results`` / ``migrate`` CLI
  subcommands and the importable :class:`CampaignService` drive the
  same layers end to end.
"""

from __future__ import annotations

import json
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import mean_ci
from repro.experiments.aggregation import (
    StreamingAggregate,
    Welford,
    campaign_status,
)
from repro.experiments.campaign import (
    CampaignSpec,
    main,
    run_campaign,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.scheduler import (
    AsyncScheduler,
    CancelCampaign,
    PoolScheduler,
    SerialScheduler,
    scheduler_by_name,
)
from repro.experiments.service import CampaignService
from repro.experiments.store import open_store

FAST_ROUNDS = dict(backend="rounds", n_nodes=16, group_size=4)


def rounds_base(**kw) -> ScenarioConfig:
    merged = dict(FAST_ROUNDS)
    merged.update(kw)
    return ScenarioConfig.quick(**merged)


def rounds_spec(name="svc-test", seeds=(1, 2), grid=None, **kw) -> CampaignSpec:
    return CampaignSpec.from_mapping(
        name=name,
        base=rounds_base(**kw),
        protocols=("ss-spst", "ss-spst-e"),
        seeds=seeds,
        grid=grid,
    )


#: a figd02-style campaign: rounds backend, a scale axis, several seeds
def deep_spec() -> CampaignSpec:
    return rounds_spec(
        name="svc-deep", seeds=(1, 2), grid={"n_nodes": (12, 16)}
    )


@pytest.fixture(params=["json", "sqlite"])
def store_spec(request, tmp_path) -> str:
    if request.param == "sqlite":
        return f"sqlite:{tmp_path / 'results.sqlite'}"
    return str(tmp_path / "records")


# ----------------------------------------------------------------------
# Scheduler interchangeability
# ----------------------------------------------------------------------
class TestSchedulers:
    def test_by_name(self):
        assert isinstance(scheduler_by_name("serial"), SerialScheduler)
        assert isinstance(scheduler_by_name("pool", 4), PoolScheduler)
        assert isinstance(scheduler_by_name("async", 4), AsyncScheduler)
        with pytest.raises(ValueError, match="unknown scheduler"):
            scheduler_by_name("celery")

    def test_engines_agree_bit_for_bit(self):
        """Same campaign through all three engines: identical tables."""
        spec = rounds_spec()
        tables = []
        for engine in (
            SerialScheduler(),
            PoolScheduler(workers=2),
            AsyncScheduler(workers=2, heartbeat_s=0.1),
        ):
            result = run_campaign(spec, scheduler=engine)
            assert result.executed == spec.size()
            tables.append(result.format_table(("rounds", "moves")))
        assert tables[0] == tables[1] == tables[2]

    def test_string_scheduler_resolves(self, tmp_path):
        result = run_campaign(
            rounds_spec(), store=str(tmp_path / "r"), scheduler="serial"
        )
        assert result.executed == rounds_spec().size()

    def test_async_heartbeats_land_in_store(self, store_spec):
        engine = AsyncScheduler(workers=2, heartbeat_s=0.01)
        run_campaign(rounds_spec(), store=store_spec, scheduler=engine)
        with open_store(store_spec) as store:
            beats = store.heartbeats()
        assert beats, "async scheduler should have published heartbeats"
        assert all(info["state"] == "done" for info in beats.values())
        assert all("seen_s" in info for info in beats.values())


# ----------------------------------------------------------------------
# Graceful cancel and resume
# ----------------------------------------------------------------------
class TestCancelResume:
    def _cancel_after(self, k: int):
        def on_update(stream):
            if stream.done >= k:
                raise CancelCampaign()

        return on_update

    def test_cancel_persists_partials_then_resume_converges(self, tmp_path):
        """The acceptance scenario: an async figd02-style campaign on a
        SQLite store is cancelled mid-flight; ``status`` shows streaming
        per-cell aggregates of the partial store; re-invoking converges
        to the same table as an uninterrupted reference run."""
        spec = deep_spec()
        store = f"sqlite:{tmp_path / 'deep.sqlite'}"
        partial = run_campaign(
            spec,
            store=store,
            scheduler=AsyncScheduler(workers=2, heartbeat_s=0.05),
            on_update=self._cancel_after(3),
        )
        assert partial.cancelled
        assert 3 <= partial.executed < spec.size()
        assert partial.stream.done == partial.executed

        # the status view streams whatever has landed, mid-campaign
        status = campaign_status(spec, store)
        assert status.done == partial.executed
        assert not status.complete
        assert 0 < sum(status.counts.values()) < spec.size()
        table = status.format_table()
        assert "/2" in table  # n/total landed-count column
        assert any(status.aggregates[m] for m in status.metrics)

        # resume: only the missing runs execute, and the final table is
        # exactly what an uninterrupted run produces
        resumed = run_campaign(spec, store=store)
        assert resumed.cancelled is False
        assert resumed.cache_hits == partial.executed
        assert resumed.executed == spec.size() - partial.executed
        reference = run_campaign(spec)
        assert resumed.format_table(("rounds", "moves")) == (
            reference.format_table(("rounds", "moves"))
        )

    def test_serial_cancel_is_graceful_too(self, store_spec):
        spec = rounds_spec()
        result = run_campaign(
            spec, store=store_spec, on_update=self._cancel_after(1)
        )
        assert result.cancelled
        assert result.executed == 1
        with open_store(store_spec) as store:
            assert store.run_count() == 1  # the delivered run is durable


# ----------------------------------------------------------------------
# Work stealing and claims
# ----------------------------------------------------------------------
class TestWorkStealing:
    def test_steal_runs_the_whole_campaign_from_one_shard(self, store_spec):
        spec = rounds_spec(seeds=(1, 2, 3))
        first = run_campaign(spec, store=store_spec, shard=(0, 2), steal=True)
        assert first.executed == spec.size()  # own share + stolen leftovers
        assert first.skipped == 0
        assert first.stolen > 0
        assert first.stolen + (first.executed - first.stolen) == spec.size()

        other = run_campaign(spec, store=store_spec, shard=(1, 2))
        assert other.executed == 0
        assert other.cache_hits == spec.size()

    def test_without_steal_foreign_runs_are_skipped(self, store_spec):
        spec = rounds_spec(seeds=(1, 2, 3))
        result = run_campaign(spec, store=store_spec, shard=(0, 2))
        assert result.stolen == 0
        assert result.skipped > 0
        assert result.executed + result.skipped == spec.size()

    def test_claim_contention_release_and_expiry(self, store_spec):
        with open_store(store_spec) as store:
            assert store.claim("k1", "worker-a") is True
            assert store.claim("k1", "worker-b") is False  # held
            store.release("k1")
            assert store.claim("k1", "worker-b") is True  # freed

            assert store.claim("k2", "worker-a", ttl_s=0.02) is True
            time.sleep(0.05)
            # the claimant died (its claim went stale): takeover allowed
            assert store.claim("k2", "worker-b", ttl_s=0.02) is True

    def test_storing_a_record_releases_its_claim(self, store_spec):
        cfg = rounds_base(seed=41, protocol="ss-spst")
        from repro.experiments.campaign import _execute, config_key

        with open_store(store_spec) as store:
            key = config_key(cfg)
            assert store.claim(key, "worker-a") is True
            store.store(cfg, _execute(cfg))
            assert store.claim(key, "worker-b") is True  # claim is gone


# ----------------------------------------------------------------------
# Streaming aggregation == batch aggregation, bit for bit
# ----------------------------------------------------------------------
_REF_CACHE = {}


def _reference_campaign():
    """One uncached serial campaign shared by the property tests (8 runs:
    2 protocols x 2 seeds x 2 grid points)."""
    if "campaign" not in _REF_CACHE:
        _REF_CACHE["campaign"] = run_campaign(deep_spec())
    return _REF_CACHE["campaign"]


finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestStreamingAggregation:
    @given(st.lists(finite_floats, min_size=1, max_size=50))
    @settings(deadline=None)
    def test_mean_ci_is_exactly_the_welford_fold(self, values):
        """There is one aggregation implementation: the batch helper is
        the streaming fold, so the two can never drift apart."""
        assert mean_ci(values) == Welford().extend(values).ci()

    @given(st.permutations(list(range(8))))
    @settings(deadline=None, max_examples=30)
    def test_any_arrival_order_matches_batch_bit_for_bit(self, order):
        """Runs land in completion order (pool/async make it arbitrary);
        the snapshot folds slot-ordered, so it equals the batch
        ``aggregate`` exactly — not approximately."""
        ref = _reference_campaign()
        assert len(ref.results) == 8
        stream = StreamingAggregate(ref.spec, ("rounds", "moves"))
        for i in order:
            stream.update(i, ref.results[i])
        snapshot = stream.snapshot()
        for metric in ("rounds", "moves"):
            assert snapshot[metric] == ref.aggregate(ref.extractor(metric))

    def test_update_is_idempotent_per_slot(self):
        ref = _reference_campaign()
        stream = StreamingAggregate(ref.spec, ("rounds",))
        for _ in range(3):  # racing shards may deliver a slot twice
            stream.update(0, ref.results[0])
        assert stream.done == 1


# ----------------------------------------------------------------------
# The importable service
# ----------------------------------------------------------------------
class TestCampaignService:
    def test_submit_status_results_roundtrip(self, store_spec):
        spec = rounds_spec()
        with CampaignService.open(store_spec, scheduler="serial") as svc:
            submitted = svc.submit(spec)
            assert submitted.executed == spec.size()

            status = svc.status(spec)
            assert status.complete
            assert status.done == spec.size()

            assembled = svc.results(spec)
            assert assembled.executed == 0
            assert assembled.cache_hits == spec.size()
            assert assembled.format_table(("rounds",)) == (
                submitted.format_table(("rounds",))
            )

            resubmitted = svc.submit(spec)  # warm: nothing to execute
            assert resubmitted.executed == 0

    def test_migrate_from_json_cache(self, tmp_path):
        spec = rounds_spec()
        json_root = str(tmp_path / "legacy-cache")
        run_campaign(spec, cache_dir=json_root)
        with CampaignService.open(
            f"sqlite:{tmp_path / 'svc.sqlite'}"
        ) as svc:
            migrated, skipped = svc.migrate_from(json_root)
            assert (migrated, skipped) == (spec.size(), 0)
            assert svc.submit(spec).cache_hits == spec.size()


# ----------------------------------------------------------------------
# CLI: subcommands and the flat compat surface
# ----------------------------------------------------------------------
SPEC_ARGS = [
    "--backend", "rounds",
    "--set", "n_nodes=16",
    "--set", "group_size=4",
    "--protocols", "ss-spst,ss-spst-e",
    "--seeds", "1,2",
    "--name", "cli-svc",
]


class TestCli:
    def test_flat_async_scheduler_and_sqlite_store(self, tmp_path, capsys):
        store = f"sqlite:{tmp_path / 'cli.sqlite'}"
        args = SPEC_ARGS + ["--store", store, "--scheduler", "async",
                            "--workers", "2", "--quiet"]
        assert main(args) == 0
        assert "executed=4 cached=0" in capsys.readouterr().out
        assert main(args) == 0  # warm re-run through the same store
        assert "executed=0 cached=4" in capsys.readouterr().out

    def test_submit_is_the_flat_cli_under_its_service_name(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "records")
        assert main(["submit"] + SPEC_ARGS + ["--store", store, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "# campaign cli-svc: 4 runs (executed=4" in out

    def test_status_subcommand_streams_partials(self, tmp_path, capsys):
        store = str(tmp_path / "records")
        # half the campaign (one shard) has landed; status must say so
        spec = rounds_spec(name="cli-svc")
        partial = run_campaign(spec, store=store, shard=(0, 2))
        capsys.readouterr()
        assert main(["status"] + SPEC_ARGS + ["--store", store]) == 0
        out = capsys.readouterr().out
        assert f"{partial.executed}/4 runs complete" in out
        assert "[complete]" not in out
        assert "# workers:" in out

    def test_status_on_absent_store(self, tmp_path, capsys):
        absent = str(tmp_path / "never-created")
        assert main(["status"] + SPEC_ARGS + ["--store", absent]) == 0
        assert "(store absent)" in capsys.readouterr().out
        import os

        assert not os.path.exists(absent)  # status never creates stores

    def test_results_subcommand_and_json_out(self, tmp_path, capsys):
        store = str(tmp_path / "records")
        out_path = str(tmp_path / "campaign.json")
        run_campaign(rounds_spec(name="cli-svc"), store=store)
        capsys.readouterr()
        argv = ["results"] + SPEC_ARGS + [
            "--store", store, "--json-out", out_path
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "stored=4 missing=0" in out
        with open(out_path, encoding="utf-8") as fh:
            payload = json.load(fh)
        assert payload["campaign"] == "cli-svc"
        assert payload["cells"]  # aggregates made it into the record

    def test_migrate_subcommand_end_to_end(self, tmp_path, capsys):
        json_root = str(tmp_path / "legacy")
        sqlite_spec = str(tmp_path / "migrated.sqlite")
        # 1. build a JSON cache dir the pre-refactor way
        assert main(SPEC_ARGS + ["--cache-dir", json_root, "--quiet"]) == 0
        # 2. migrate it into SQLite
        assert main(["migrate", json_root, sqlite_spec, "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "# migrated 4 records" in out
        # 3. the migrated store resumes the campaign with 100% hits
        assert main(
            SPEC_ARGS + ["--store", sqlite_spec, "--quiet"]
        ) == 0
        assert "executed=0 cached=4" in capsys.readouterr().out

    def test_flat_shard_steal_flags(self, tmp_path, capsys):
        store = str(tmp_path / "records")
        argv = SPEC_ARGS + [
            "--store", store, "--shard", "0/2", "--steal", "--quiet"
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "executed=4" in out  # own share + stolen leftovers
        assert "skipped=0" in out
        assert "stolen=" in out

    def test_store_and_cache_dir_conflict(self, tmp_path):
        argv = SPEC_ARGS + [
            "--store", str(tmp_path / "a"),
            "--cache-dir", str(tmp_path / "b"),
        ]
        with pytest.raises(SystemExit):
            main(argv)
