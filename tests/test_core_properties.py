"""Property-based tests (hypothesis) for the self-stabilization lemmas.

Random connected geometric topologies, random group memberships, and —
for the convergence properties — *arbitrary* initial states including
parent cycles and garbage costs.  These are the strongest checks of
Lemmas 1-3 in the suite.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    CentralDaemonExecutor,
    RandomizedDaemonExecutor,
    SyncExecutor,
    arbitrary_states,
    check_loop_freedom,
    extract_tree,
    fresh_states,
    is_legitimate,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.graph import Topology

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def random_connected_topology(seed, n_min=5, n_max=18):
    """Random geometric graph, resampled until connected."""
    rng = np.random.default_rng(seed)
    for attempt in range(50):
        n = int(rng.integers(n_min, n_max + 1))
        pos = rng.random((n, 2)) * 400.0
        members = [int(x) for x in rng.choice(n, size=max(2, n // 3), replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            return topo
    pytest.skip("could not sample a connected topology")


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_hop_converges_from_arbitrary_state(seed):
    """Lemma 1 for SS-SPST under both daemons, arbitrary initial states."""
    topo = random_connected_topology(seed)
    m = metric_by_name("hop", EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))
    for ex in (SyncExecutor(topo, m), CentralDaemonExecutor(topo, m)):
        res = ex.run(list(init))
        assert res.converged
        assert is_legitimate(topo, m, res.states)
        tree = extract_tree(topo, res.states)
        assert tree is not None and tree.spans_all()


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_tx_converges_from_arbitrary_state(seed):
    topo = random_connected_topology(seed)
    m = metric_by_name("tx", EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 2))
    res = CentralDaemonExecutor(topo, m).run(init)
    assert res.converged
    assert is_legitimate(topo, m, res.states)


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_energy_converges_under_randomized_daemon(seed):
    """Lemma 1 for SS-SPST-E.  Fixed-order daemons admit rare limit cycles
    (a faithful echo of the instability the paper reports for the F
    metric); the randomized daemon — matching jittered beacons — converges."""
    topo = random_connected_topology(seed)
    m = metric_by_name("energy", EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 3))
    res = RandomizedDaemonExecutor(topo, m, np.random.default_rng(seed + 4)).run(
        init, max_rounds=300
    )
    assert res.converged
    assert is_legitimate(topo, m, res.states)
    tree = extract_tree(topo, res.states)
    assert tree is not None and tree.spans_all()


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_loop_freedom_at_fixpoint(seed):
    """Lemma 3: no cycles, hops bounded, for every metric that converged."""
    topo = random_connected_topology(seed)
    for name in ("hop", "tx", "energy"):
        m = metric_by_name(name, EXAMPLE_RADIO)
        res = RandomizedDaemonExecutor(topo, m, np.random.default_rng(seed)).run(
            fresh_states(topo, m), max_rounds=300
        )
        if not res.converged:  # F-style oscillation is documented behaviour
            continue
        report = check_loop_freedom(topo, res.states)
        assert report.holds, report.detail


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_closure_at_fixpoint(seed):
    """Lemma 2: legitimate states are fixpoints of further rounds."""
    topo = random_connected_topology(seed)
    m = metric_by_name("energy", EXAMPLE_RADIO)
    res = RandomizedDaemonExecutor(topo, m, np.random.default_rng(seed)).run(
        fresh_states(topo, m), max_rounds=300
    )
    if not res.converged:
        return
    again = CentralDaemonExecutor(topo, m).run(list(res.states), max_rounds=5)
    assert again.rounds == 0


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_hop_tree_is_bfs_optimal(seed):
    """The hop fixpoint gives every node its BFS-minimal depth."""
    topo = random_connected_topology(seed)
    m = metric_by_name("hop", EXAMPLE_RADIO)
    res = CentralDaemonExecutor(topo, m).run(fresh_states(topo, m))
    assert res.converged
    bfs = topo.bfs_hops()
    for v, s in enumerate(res.states):
        assert s.hop == int(bfs[v])


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
def test_fault_recovery_after_edge_removal(seed):
    """Adaptivity: stabilize, delete a random tree edge (a 'fault'), and
    re-stabilize on the shrunken topology.  The system must converge to a
    legitimate state of the *new* topology (the MANET adaptation story)."""
    topo = random_connected_topology(seed)
    m = metric_by_name("hop", EXAMPLE_RADIO)
    res = CentralDaemonExecutor(topo, m).run(fresh_states(topo, m))
    assert res.converged
    tree = res.tree(topo)
    edges = tree.edges()
    if not edges:
        return
    rng = np.random.default_rng(seed + 9)
    p, v = edges[int(rng.integers(len(edges)))]
    dist2 = topo.dist.copy()
    dist2[p, v] = dist2[v, p] = np.inf
    topo2 = Topology(dist2, topo.source, topo.members)
    # Carry over the old states - they are now (possibly) illegitimate.
    carried = list(res.states)
    if carried[v].parent == p:
        pass  # the broken parent pointer is exactly the planted fault
    res2 = CentralDaemonExecutor(topo2, m).run(carried)
    assert res2.converged
    assert is_legitimate(topo2, m, res2.states)


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000), scale=st.floats(0.5, 3.0))
def test_metric_scale_invariance(seed, scale):
    """Scaling all energies by a constant must not change the chosen tree
    (per-bit units are arbitrary)."""
    from repro.energy.radio import FirstOrderRadioModel

    topo = random_connected_topology(seed)
    r1 = EXAMPLE_RADIO
    r2 = FirstOrderRadioModel(
        e_elec=r1.e_elec * scale,
        e_rx=r1.e_rx * scale,
        eps_amp=r1.eps_amp * scale,
        alpha=r1.alpha,
        max_range=r1.max_range,
        d_floor=r1.d_floor,
    )
    m1 = metric_by_name("energy", r1)
    m2 = metric_by_name("energy", r2)
    res1 = RandomizedDaemonExecutor(topo, m1, np.random.default_rng(seed)).run(
        fresh_states(topo, m1), max_rounds=300
    )
    res2 = RandomizedDaemonExecutor(topo, m2, np.random.default_rng(seed)).run(
        fresh_states(topo, m2), max_rounds=300
    )
    if res1.converged and res2.converged:
        assert [s.parent for s in res1.states] == [s.parent for s in res2.states]
