"""Daemon × engine decomposition tests.

The stabilization guarantees are stated relative to an activation daemon;
these tests pin the decomposition's core contract — every daemon runs
under both engine modes with **bit-identical** trajectories — plus the
daemon-specific semantics: quiescence certification for the partial
(weakly-fair) daemon, the adversarial daemon's ability to drive the F/E
limit cycles the randomized daemon escapes, registry/shim behavior, and
the evaluations-accounting fix (the converged-check pass is not work).

``REPRO_TEST_DAEMON`` (see ``conftest.py``) selects the daemon for the
generic single-daemon tests; CI matrixes it over {central, randomized}.
"""

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    DAEMON_NAMES,
    DES_DAEMON_NAMES,
    CentralDaemonExecutor,
    IncrementalCentralDaemonExecutor,
    IncrementalSyncExecutor,
    NodeState,
    RandomizedDaemonExecutor,
    RoundEngine,
    SyncExecutor,
    arbitrary_states,
    check_closure,
    check_convergence,
    daemon_by_name,
    engine_for,
    fresh_states,
    is_legitimate,
    metric_by_name,
)
from repro.core.daemons import Daemon
from repro.core.examples import EXAMPLE_RADIO
from repro.core.metrics import METRIC_NAMES
from repro.graph import Topology

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

MAX_ROUNDS = 150


def random_connected_topology(seed, n_min=5, n_max=12):
    rng = np.random.default_rng(seed)
    for _ in range(50):
        n = int(rng.integers(n_min, n_max + 1))
        pos = rng.random((n, 2)) * 400.0
        members = [int(x) for x in rng.choice(n, size=max(2, n // 3), replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            return topo
    pytest.skip("could not sample a connected topology")


def engine(topo, metric, daemon, incremental, seed=0):
    # Engine-generic on the REPRO_TEST_ENGINE axis: the array engine is
    # bit-identical to the object engine by contract, so every assertion
    # in this module must hold unchanged under either implementation.
    return engine_for(
        topo,
        metric,
        daemon,
        incremental=incremental,
        engine=os.environ.get("REPRO_TEST_ENGINE", "object"),
        rng=np.random.default_rng(seed),
    )


def assert_same_trajectory(a, b):
    assert a.states == b.states  # exact, not approx: bit-identical
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cost_history == b.cost_history
    assert a.moves == b.moves


# ----------------------------------------------------------------------
# The tentpole contract: all daemons x {full, incremental} bit-identical
# ----------------------------------------------------------------------
@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
@pytest.mark.parametrize("metric_name", METRIC_NAMES)
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_full_and_incremental_bit_identical_any_daemon(daemon, metric_name, seed):
    """Every daemon x every metric, from arbitrary illegitimate states:
    the incremental engine replays the full engine exactly (states,
    rounds, cost history, moves)."""
    topo = random_connected_topology(seed)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))
    full = engine(topo, m, daemon, False, seed=9).run(list(init), max_rounds=MAX_ROUNDS)
    inc = engine(topo, m, daemon, True, seed=9).run(list(init), max_rounds=MAX_ROUNDS)
    assert_same_trajectory(full, inc)


@settings(**SETTINGS)
@given(seed=st.integers(0, 100_000))
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_run_perturbed_matches_full_run_any_daemon(daemon, seed):
    """Warm-start fault recovery is daemon-generic: run_perturbed from a
    settled vector equals a full-mode run on the perturbed vector."""
    topo = random_connected_topology(seed)
    m = metric_by_name("energy", EXAMPLE_RADIO)
    settled = engine(topo, m, daemon, True, seed=5).run(
        fresh_states(topo, m), max_rounds=MAX_ROUNDS
    )
    if not settled.converged:  # adversarial may legitimately stall
        return
    rng = np.random.default_rng(seed + 3)
    faults = []
    for _ in range(3):
        v = int(rng.integers(1, topo.n))
        st_v = settled.states[v]
        nbrs = [u for u in topo.neighbors(v) if u != st_v.parent]
        if rng.random() < 0.5:
            faults.append((v, NodeState(st_v.parent, float(rng.uniform(0, 9)), st_v.hop)))
        elif nbrs:
            faults.append((v, NodeState(int(rng.choice(nbrs)), st_v.cost, st_v.hop)))
    applied = []
    perturbed = list(settled.states)
    for v, ns in faults:
        if perturbed[v] != ns:
            perturbed[v] = ns
            applied.append((v, ns))
    if not applied:
        return
    full = engine(topo, m, daemon, False, seed=11).run(
        list(perturbed), max_rounds=MAX_ROUNDS
    )
    inc = engine(topo, m, daemon, True, seed=11).run_perturbed(
        list(settled.states), applied, max_rounds=MAX_ROUNDS
    )
    assert_same_trajectory(full, inc)


@pytest.mark.parametrize("metric_name", ["hop", "tx"])
@pytest.mark.parametrize("daemon", DAEMON_NAMES)
def test_every_daemon_converges_for_potential_metrics(daemon, metric_name):
    """hop/tx are exact potentials: every daemon — including the greedy
    adversary — must reach the legitimate fixpoint."""
    topo = random_connected_topology(42)
    m = metric_by_name(metric_name, EXAMPLE_RADIO)
    res = engine(topo, m, daemon, True, seed=1).run(
        fresh_states(topo, m), max_rounds=400
    )
    assert res.converged
    assert is_legitimate(topo, m, res.states)


# ----------------------------------------------------------------------
# Limit-cycle regression: the adversarial daemon stalls where the
# randomized daemon converges (the schedule-dependence the paper's F/E
# instability discussion is about)
# ----------------------------------------------------------------------
def test_adversarial_stalls_where_randomized_converges():
    # The F metric keeps the paper's advertised-cost pricing and hence its
    # documented best-response cycles; E's exact marginal chain pricing
    # (see docs/convergence.md) removed every adversarial stall we could
    # find for it, so the schedule-dependence regression is pinned on F.
    seed = 3  # found by search; stable because everything is seeded
    topo = random_connected_topology(seed)
    m = metric_by_name("farthest", EXAMPLE_RADIO)
    init = arbitrary_states(topo, m, np.random.default_rng(seed + 1))
    adv = RoundEngine(topo, m, daemon="adversarial-max-cost").run(
        list(init), max_rounds=150
    )
    assert not adv.converged  # greedy max-cost scheduling enters a limit cycle
    rand = engine(topo, m, "randomized", False, seed=0).run(
        list(init), max_rounds=300
    )
    assert rand.converged
    assert is_legitimate(topo, m, rand.states)
    # The cycle is a scheduling artifact, not a broken state: the stalled
    # trajectory still stabilizes once handed to a randomized schedule.
    recovered = engine(topo, m, "randomized", False, seed=1).run(
        list(adv.states), max_rounds=300
    )
    assert recovered.converged


# ----------------------------------------------------------------------
# Daemon-specific semantics
# ----------------------------------------------------------------------
class TestWeaklyFair:
    def test_no_false_convergence_on_partial_rounds(self):
        """A move-free round under a partial daemon must not certify a
        fixpoint: with delay D the engine demands D consecutive quiet
        rounds, so the result is never 'converged' while enabled nodes
        exist."""
        topo = random_connected_topology(3)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        # p = 0 schedules nothing except forced (starvation-bound) picks:
        # every node still runs every `delay` rounds, so this converges.
        daemon = daemon_by_name(
            "weakly-fair", rng=np.random.default_rng(0), delay=4, p=0.0
        )
        res = RoundEngine(topo, m, daemon=daemon).run(fresh_states(topo, m))
        assert res.converged
        assert is_legitimate(topo, m, res.states)

    def test_quiescence_window_matches_delay(self):
        daemon = daemon_by_name("weakly-fair", delay=5)
        assert daemon.quiescence_rounds == 5

    def test_rejects_bad_options(self):
        with pytest.raises(ValueError):
            daemon_by_name("weakly-fair", delay=0)
        with pytest.raises(ValueError):
            daemon_by_name("weakly-fair", p=1.5)


class TestDistributed:
    def test_chunk_size_one_is_serial(self):
        """k=1 distributed == randomized serial (same rng, same schedule)."""
        topo = random_connected_topology(11)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        init = arbitrary_states(topo, m, np.random.default_rng(2))
        k1 = RoundEngine(
            topo, m, daemon="distributed", rng=np.random.default_rng(5), k=1
        ).run(list(init), max_rounds=MAX_ROUNDS)
        rand = engine(topo, m, "randomized", False, seed=5).run(
            list(init), max_rounds=MAX_ROUNDS
        )
        assert_same_trajectory(k1, rand)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            daemon_by_name("distributed", k=0)


# ----------------------------------------------------------------------
# Generic engine behavior under the CI-matrixed daemon
# ----------------------------------------------------------------------
class TestEnvDaemon:
    def test_lemma1_and_2_under_env_daemon(self, test_daemon):
        topo = random_connected_topology(17)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        report = check_convergence(topo, m, test_daemon, fresh_states(topo, m))
        assert report.holds, report.detail
        res = RoundEngine(
            topo, m, daemon=test_daemon, rng=np.random.default_rng(0)
        ).run(fresh_states(topo, m))
        closure = check_closure(topo, m, test_daemon, res.states)
        assert closure.holds, closure.detail

    def test_deterministic_given_seed(self, test_daemon):
        topo = random_connected_topology(23)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        runs = [
            engine(topo, m, test_daemon, inc, seed=13).run(fresh_states(topo, m))
            for inc in (False, False, True)
        ]
        assert runs[0].states == runs[1].states
        assert_same_trajectory(runs[0], runs[2])


# ----------------------------------------------------------------------
# Evaluations accounting (the converged-check pass is not work)
# ----------------------------------------------------------------------
class TestEvaluationsAccounting:
    def test_fixpoint_rerun_costs_zero_evaluations(self):
        """Re-running a settled vector does zero stabilization work under
        both modes — the certifying pass is no longer billed, which is
        what used to make baselines and incrementals disagree by exactly
        n on the final round."""
        topo = random_connected_topology(29)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        settled = engine(topo, m, "central", True).run(fresh_states(topo, m))
        assert settled.converged
        for incremental in (False, True):
            again = engine(topo, m, "central", incremental).run(list(settled.states))
            assert again.converged and again.rounds == 0
            assert again.evaluations == 0
        # Warm-started with no effective faults the incremental engine
        # short-circuits the check pass entirely; the diagnostic agrees.
        warm = engine(topo, m, "central", True).run_perturbed(
            list(settled.states), []
        )
        assert warm.converged and warm.evaluations == 0

    def test_full_mode_counts_n_per_counted_round(self):
        topo = random_connected_topology(31)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        res = engine(topo, m, "central", False).run(fresh_states(topo, m))
        assert res.converged
        assert res.evaluations == res.rounds * topo.n

    def test_incremental_never_out_evaluates_full(self):
        topo = random_connected_topology(37)
        m = metric_by_name("energy", EXAMPLE_RADIO)
        init = fresh_states(topo, m)
        full = engine(topo, m, "central", False).run(list(init), max_rounds=MAX_ROUNDS)
        inc = engine(topo, m, "central", True).run(list(init), max_rounds=MAX_ROUNDS)
        assert_same_trajectory(full, inc)
        assert inc.evaluations <= full.evaluations


# ----------------------------------------------------------------------
# Registry and deprecation shims
# ----------------------------------------------------------------------
class TestRegistryAndShims:
    def test_daemon_names_cover_the_taxonomy(self):
        assert set(DAEMON_NAMES) == {
            "synchronous",
            "central",
            "randomized",
            "distributed",
            "adversarial-max-cost",
            "weakly-fair",
        }
        assert "adversarial-max-cost" not in DES_DAEMON_NAMES
        assert set(DES_DAEMON_NAMES) < set(DAEMON_NAMES)

    def test_daemon_by_name_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown daemon"):
            daemon_by_name("round-robin")
        with pytest.raises(ValueError, match="no options"):
            daemon_by_name("central", k=3)

    def test_engine_accepts_instance_and_name(self):
        topo = random_connected_topology(41)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        by_name = RoundEngine(topo, m, daemon="central").run(fresh_states(topo, m))
        by_inst = RoundEngine(topo, m, daemon=daemon_by_name("central")).run(
            fresh_states(topo, m)
        )
        assert_same_trajectory(by_name, by_inst)

    def test_custom_daemon_subclass_plugs_in(self):
        """The point of the decomposition: a new schedule is a tiny
        subclass, not a new executor."""

        class ReverseCentral(Daemon):
            name = "reverse-central"

            def round_steps(self, ctx):
                for v in reversed(range(ctx.n)):
                    yield (v,)

        topo = random_connected_topology(43)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        full = RoundEngine(topo, m, daemon=ReverseCentral()).run(fresh_states(topo, m))
        inc = RoundEngine(topo, m, daemon=ReverseCentral(), incremental=True).run(
            fresh_states(topo, m)
        )
        assert full.converged
        assert is_legitimate(topo, m, full.states)
        assert_same_trajectory(full, inc)

    def test_deprecated_executors_still_importable_and_equivalent(self):
        from repro.core import rounds

        topo = random_connected_topology(47)
        m = metric_by_name("hop", EXAMPLE_RADIO)
        pairs = [
            (SyncExecutor(topo, m), RoundEngine(topo, m, daemon="synchronous")),
            (CentralDaemonExecutor(topo, m), RoundEngine(topo, m, daemon="central")),
            (
                RandomizedDaemonExecutor(topo, m, np.random.default_rng(3)),
                RoundEngine(topo, m, daemon="randomized", rng=np.random.default_rng(3)),
            ),
            (
                IncrementalSyncExecutor(topo, m),
                RoundEngine(topo, m, daemon="synchronous", incremental=True),
            ),
            (
                IncrementalCentralDaemonExecutor(topo, m),
                RoundEngine(topo, m, daemon="central", incremental=True),
            ),
        ]
        for shim, engine_ in pairs:
            assert isinstance(shim, RoundEngine)
            assert_same_trajectory(
                shim.run(fresh_states(topo, m)), engine_.run(fresh_states(topo, m))
            )
        # the pre-decomposition private base name stays importable too
        assert rounds._ExecutorBase is RoundEngine
