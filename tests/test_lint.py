"""The contract-aware linter: fixture corpora, CLI, and the live tree.

Three layers of pinning:

* the **bad** fixture corpus must trigger every rule id exactly where
  seeded (a checker that stops firing is a silent hole in CI);
* the **clean** fixture corpus and the **live** ``src/repro`` tree must
  produce zero findings (the repo ships lint-clean — new violations
  fail, not accumulate);
* the static contract tables must agree with the **runtime** they
  describe: ``hash_participation()`` vs ``_hash_payload``,
  ``REGISTRY_AXES`` vs the live registries, ``NUMPY_TWINS`` vs
  ``_compiled``.
"""

import json
from pathlib import Path

import pytest

from repro.lint import Baseline, Finding, run_lint
from repro.lint.cli import main

REPO = Path(__file__).resolve().parents[1]
FIXTURES = REPO / "tests" / "fixtures" / "lint"
CLEAN = FIXTURES / "clean"
BAD = FIXTURES / "bad"

ALL_RULES = (
    "D101", "D102", "D103", "D104", "D105", "E901",
    "H201", "H202", "H203", "H204",
    "R301", "R302", "R303", "R304",
    "K401", "K402",
)


def lint_tree(root: Path, **kwargs):
    return run_lint(str(root / "pkg"), repo_root=str(root), **kwargs)


# ----------------------------------------------------------------------
# Fixture corpora
# ----------------------------------------------------------------------
class TestFixtureCorpora:
    def test_clean_tree_has_zero_findings(self):
        assert lint_tree(CLEAN) == []

    def test_bad_tree_triggers_every_rule(self):
        rules = {f.rule for f in lint_tree(BAD)}
        assert rules == set(ALL_RULES)

    def test_bad_tree_counts_are_exact(self):
        """Each seeded violation is found once — no duplicates, no
        misses (a checker double-reporting is as wrong as one missing)."""
        counts: dict = {}
        for f in lint_tree(BAD):
            counts[f.rule] = counts.get(f.rule, 0) + 1
        assert counts == {
            "D101": 2, "D102": 3, "D103": 2, "D104": 3, "D105": 2,
            "E901": 1,
            "H201": 1, "H202": 1, "H203": 2, "H204": 4,
            "R301": 1, "R302": 1, "R303": 1, "R304": 2,
            "K401": 2, "K402": 2,
        }

    def test_inline_suppression_holds(self):
        """clock.py carries one `# lint: ignore[D101]` wall-clock read;
        it must not be reported while the unsuppressed ones are."""
        clock = [
            f for f in lint_tree(BAD)
            if f.path.endswith("clock.py") and f.rule == "D101"
        ]
        assert len(clock) == 2
        assert not any("suppressed" in f.message for f in clock)

    def test_select_and_ignore_prefixes(self):
        only_d = lint_tree(BAD, select=["D"])
        assert only_d and all(f.rule.startswith("D") for f in only_d)
        no_d104 = {f.rule for f in lint_tree(BAD, ignore=["D104"])}
        assert "D104" not in no_d104 and "D101" in no_d104
        families = {f.rule[0] for f in lint_tree(BAD, select=["H2", "K"])}
        assert families == {"H", "K"}

    def test_findings_are_sorted_and_stable(self):
        once, twice = lint_tree(BAD), lint_tree(BAD)
        assert once == twice
        keys = [(f.path, f.line, f.rule, f.message) for f in once]
        assert keys == sorted(keys)


# ----------------------------------------------------------------------
# CLI: exit codes, JSON report, baseline
# ----------------------------------------------------------------------
class TestCli:
    def _argv(self, root: Path, *extra: str):
        return [str(root / "pkg"), "--repo-root", str(root), *extra]

    def test_exit_codes(self, tmp_path, capsys):
        empty = tmp_path / "none.json"
        assert main(self._argv(CLEAN, "--baseline", str(empty))) == 0
        assert main(self._argv(BAD, "--baseline", str(empty))) == 1
        out = capsys.readouterr().out
        assert "# OK: 0 findings" in out
        assert "D101" in out and "docs/static_analysis.md" in out

    def test_json_report(self, tmp_path, capsys):
        artifact = tmp_path / "report" / "lint.json"
        code = main(
            self._argv(
                BAD,
                "--baseline", str(tmp_path / "none.json"),
                "--json", "--json-out", str(artifact),
            )
        )
        assert code == 1
        stdout_report = json.loads(capsys.readouterr().out)
        file_report = json.loads(artifact.read_text())
        assert stdout_report == file_report
        assert not file_report["ok"]
        assert file_report["counts"]["D101"] == 2
        sample = file_report["findings"][0]
        assert set(sample) == {"rule", "path", "line", "message"}

    def test_baseline_roundtrip(self, tmp_path, capsys):
        """--write-baseline then rerun: every finding baselined, exit 0;
        a *new* violation still fails."""
        baseline = tmp_path / "lint-baseline.json"
        assert main(
            self._argv(BAD, "--baseline", str(baseline), "--write-baseline")
        ) == 0
        assert main(self._argv(BAD, "--baseline", str(baseline))) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out
        # drop one entry from the baseline -> that finding is new again
        payload = json.loads(baseline.read_text())
        removed = payload["findings"].pop()
        baseline.write_text(json.dumps(payload))
        assert main(self._argv(BAD, "--baseline", str(baseline))) == 1
        assert removed["rule"] in capsys.readouterr().out

    def test_baseline_tolerates_line_drift(self):
        found = lint_tree(BAD)
        shifted = [
            Finding(f.rule, f.path, f.line + 7, f.message) for f in found
        ]
        baseline = Baseline(shifted)
        assert all(baseline.covers(f) for f in found)

    def test_empty_baseline_file_is_no_baseline(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text("")
        assert main(self._argv(CLEAN, "--baseline", str(empty))) == 0

    def test_missing_package_root_errors(self):
        with pytest.raises(SystemExit):
            main(["/nonexistent/nowhere"])


# ----------------------------------------------------------------------
# The live tree ships lint-clean
# ----------------------------------------------------------------------
class TestLiveTree:
    def test_live_tree_is_clean(self):
        findings = run_lint(str(REPO / "src" / "repro"))
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_seeded_violation_is_caught_live(self, tmp_path):
        """Copy the live tree, plant one wall-clock read in the core,
        and the linter must catch exactly it — proof the live run has
        teeth, not a scope hole."""
        import shutil

        shutil.copytree(REPO / "src" / "repro", tmp_path / "repro")
        shutil.copytree(
            REPO / "tests", tmp_path / "tests",
            ignore=shutil.ignore_patterns("fixtures", "__pycache__"),
        )
        (tmp_path / "README.md").write_text(
            (REPO / "README.md").read_text()
        )
        if (REPO / "docs").is_dir():
            shutil.copytree(REPO / "docs", tmp_path / "docs")
        victim = tmp_path / "repro" / "core" / "state.py"
        victim.write_text(
            victim.read_text()
            + "\n\ndef _leak():\n    import time\n    return time.time()\n"
        )
        findings = run_lint(str(tmp_path / "repro"), repo_root=str(tmp_path))
        assert [f.rule for f in findings] == ["D101"]
        assert findings[0].path.endswith("core/state.py")


# ----------------------------------------------------------------------
# Static tables == runtime behavior
# ----------------------------------------------------------------------
class TestContractTables:
    def test_registry_contract_matches_live_registries(self):
        from repro.contracts import verify_registry_contract

        verify_registry_contract()  # raises on drift

    def test_registry_contract_diff_is_field_level(self, monkeypatch):
        import repro.contracts as contracts

        broken = dict(contracts.REGISTRY_AXES)
        broken["daemon"] = dict(broken["daemon"])
        broken["daemon"]["names"] = ("synchronous",)  # drop the rest
        monkeypatch.setattr(contracts, "REGISTRY_AXES", broken)
        with pytest.raises(ValueError, match="registered but undeclared"):
            contracts.verify_registry_contract()

    def test_hash_participation_matches_hash_payload(self):
        """The table --dry-run prints is exactly the payload key set of
        a default-axes config (plus nothing, minus nothing)."""
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.store import _hash_payload, hash_participation

        hashed, neutral = hash_participation()
        config = ScenarioConfig(protocol="ss-spst-t", seed=3)
        payload = _hash_payload(config)
        assert set(payload) == set(hashed)
        for name, default in neutral.items():
            assert getattr(config, name) == default

    def test_dry_run_prints_hash_participation(self, capsys):
        from repro.experiments.campaign import main as campaign_main

        code = campaign_main(
            ["--figure", "fig07", "--seeds", "1", "--dry-run"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "# hash-participating fields (23):" in out
        assert "# hash-neutral at default (14):" in out
        assert "daemon='distributed'" in out

    def test_numpy_twins_cover_compiled_registry(self):
        """NUMPY_TWINS (what lint checks) is exactly the set of kernels
        _build() registers (what runtime dispatches)."""
        import ast
        import inspect

        from repro.core import kernels

        tree = ast.parse(inspect.getsource(kernels._build))
        registered = {
            node.targets[0].slice.value
            for node in ast.walk(tree)
            if isinstance(node, ast.Assign)
            and isinstance(node.targets[0], ast.Subscript)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "_compiled"
            and isinstance(node.targets[0].slice, ast.Constant)
        }
        assert registered == set(kernels.NUMPY_TWINS)
