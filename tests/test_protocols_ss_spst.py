"""Tests for the SS-SPST DES agents (beaconing, tree formation, data)."""

import numpy as np
import pytest

from repro.core.metrics import metric_by_name
from repro.energy import FirstOrderRadioModel
from repro.metrics.hub import MetricsHub
from repro.mobility import StaticPlacement, TraceMobility
from repro.net import MacConfig, Network, Packet, PacketKind
from repro.protocols.registry import make_agent_factory
from repro.protocols.ss_spst import SSSPSTAgent, SSSPSTConfig
from repro.sim import Simulator
from repro.util.geometry import Arena
from repro.util.rng import RngStreams

ARENA = Arena(1000.0, 1000.0)

#: radio used by DES protocol tests (example constants, realistic e_elec)
RADIO = FirstOrderRadioModel(e_elec=1e-6, e_rx=0.3e-6, eps_amp=100e-12, max_range=250.0)


def build(positions, protocol="ss-spst", members=None, mobility=None, beacon=1.0):
    sim = Simulator()
    streams = RngStreams(99)
    mob = mobility or StaticPlacement(
        len(positions), ARENA, positions=np.array(positions, dtype=float)
    )
    net = Network(sim, mob, RADIO, streams, mac_config=MacConfig())
    net.set_group(source=0, members=members if members is not None else range(1, mob.n))
    hub = MetricsHub(n_receivers=len(net.receivers))
    net.hub = hub
    net.attach_agents(make_agent_factory(protocol, beacon_interval=beacon))
    net.start()
    return sim, net, hub


def agent(net, i) -> SSSPSTAgent:
    return net.nodes[i].agent


class TestTreeFormation:
    def test_line_topology_forms_chain(self):
        # 0 - 1 - 2 at 200 m spacing: only consecutive nodes in range.
        sim, net, hub = build([[0, 0], [200, 0], [400, 0]])
        sim.run(until=10.0)
        assert agent(net, 1).state.parent == 0
        assert agent(net, 2).state.parent == 1
        assert agent(net, 1).state.hop == 1
        assert agent(net, 2).state.hop == 2

    def test_star_topology(self):
        sim, net, hub = build(
            [[200, 200], [350, 200], [200, 350], [50, 200], [200, 50]]
        )
        sim.run(until=10.0)
        for i in range(1, 5):
            assert agent(net, i).state.parent == 0

    def test_source_state_is_root(self):
        sim, net, hub = build([[0, 0], [150, 0]])
        sim.run(until=5.0)
        src = agent(net, 0)
        assert src.state.parent is None
        assert src.state.cost == 0.0
        assert src.state.hop == 0

    def test_flags_propagate_bottom_up(self):
        # Chain 0-1-2 where only 2 is a member: 1 must be flagged (member
        # downstream), matching the paper's bottom-up pruning flags.
        sim, net, hub = build([[0, 0], [200, 0], [400, 0]], members=[2])
        sim.run(until=10.0)
        assert agent(net, 2).flag is True
        assert agent(net, 1).flag is True
        assert agent(net, 0).flag is True

    def test_non_member_leaf_unflagged(self):
        sim, net, hub = build([[0, 0], [200, 0], [400, 0]], members=[1])
        sim.run(until=10.0)
        assert agent(net, 2).flag is False
        assert agent(net, 1).flag is True

    @pytest.mark.parametrize("protocol", ["ss-spst", "ss-spst-t", "ss-spst-f", "ss-spst-e"])
    def test_all_variants_form_trees(self, protocol):
        positions = [[0, 0], [180, 0], [360, 0], [180, 180], [0, 180]]
        sim, net, hub = build(positions, protocol=protocol)
        sim.run(until=12.0)
        for i in range(1, 5):
            st = agent(net, i).state
            assert st.parent is not None, f"{protocol}: node {i} disconnected"
            assert st.hop < net.n


class TestDataPlane:
    def test_data_flows_down_tree(self):
        sim, net, hub = build([[0, 0], [200, 0], [400, 0]])
        sim.run(until=6.0)  # let the tree stabilize
        agent(net, 0).originate_data()
        sim.run(until=8.0)
        assert hub.data_delivered == 2  # both members got it

    def test_pruned_branch_gets_no_data(self):
        # Member 1 only; node 2 is a non-member leaf beyond 1.
        sim, net, hub = build([[0, 0], [200, 0], [400, 0]], members=[1])
        sim.run(until=6.0)
        snap_before = net.nodes[2].ledger.snapshot()
        agent(net, 0).originate_data()
        sim.run(until=8.0)
        assert hub.data_delivered == 1
        # Node 2 heard no *data*: node 1 did not forward (pruned branch).
        # (Beacons keep flowing — only the data-class buckets must freeze.)
        snap_after = net.nodes[2].ledger.snapshot()
        data_energy = lambda s: s.rx_data + s.discard_data + s.tx_data
        assert data_energy(snap_after) == pytest.approx(data_energy(snap_before))

    def test_power_control_radius(self):
        """The source transmits data just far enough for its farthest
        flagged child, not at max range."""
        sim, net, hub = build([[0, 0], [100, 0], [240, 0]], members=[1])
        sim.run(until=6.0)
        tx_before = net.nodes[0].ledger.snapshot().tx_data
        agent(net, 0).originate_data()
        sim.run(until=8.0)
        tx_spent = net.nodes[0].ledger.snapshot().tx_data - tx_before
        pkt_bits = 512 * 8
        # Paid for ~110 m (child at 100 m + 10% margin), far below 250 m.
        assert tx_spent <= RADIO.tx_energy(pkt_bits, 100.0 * 1.1 + 1.0)
        assert tx_spent < RADIO.tx_energy(pkt_bits, 250.0)

    def test_duplicate_data_discarded(self):
        sim, net, hub = build([[0, 0], [200, 0]])
        sim.run(until=6.0)
        a1 = agent(net, 1)
        pkt = Packet(PacketKind.DATA, src=0, origin=0, seq=77, size_bytes=512)
        assert a1._handle_data(pkt) is True
        dup = Packet(PacketKind.DATA, src=0, origin=0, seq=77, size_bytes=512)
        assert a1._handle_data(dup) is False

    def test_data_from_non_parent_discarded(self):
        sim, net, hub = build([[0, 0], [200, 0], [100, 170]])
        sim.run(until=6.0)
        a1 = agent(net, 1)
        stranger = 2 if a1.state.parent != 2 else 0
        pkt = Packet(PacketKind.DATA, src=stranger, origin=0, seq=5, size_bytes=512)
        assert a1._handle_data(pkt) is False

    def test_only_source_originates(self):
        sim, net, hub = build([[0, 0], [200, 0]])
        with pytest.raises(RuntimeError):
            agent(net, 1).originate_data()


class TestFaultRecovery:
    def test_parent_loss_triggers_reorganization(self):
        """Node 1 walks out of range; node 2 must re-join through node 3.

        Topology: 0 at origin; relay 1 at (200,0); member 2 at (400,0);
        alternate relay 3 at (200,60) (within range of both 0 and 2).
        Node 1 departs at t=20 s.
        """
        traces = [
            [(0.0, 100.0, 500.0)],
            [(0.0, 300.0, 500.0), (20.0, 300.0, 500.0), (26.0, 900.0, 900.0)],
            [(0.0, 500.0, 500.0)],
            [(0.0, 300.0, 560.0)],
        ]
        mob = TraceMobility(ARENA, traces)
        sim, net, hub = build(None, members=[2], mobility=mob)
        sim.run(until=15.0)
        # Initially node 2 may use either relay; force the scenario only if
        # it picked node 1 (id tie-breaks make this deterministic).
        parent_before = agent(net, 2).state.parent
        assert parent_before in (1, 3)
        sim.run(until=45.0)
        assert agent(net, 2).state.parent == 3  # node 1 is gone
        assert agent(net, 2).state.hop == 2

    def test_disconnection_sets_infinity(self):
        """A node with no neighbors declares itself disconnected."""
        traces = [
            [(0.0, 100.0, 100.0)],
            [(0.0, 300.0, 100.0), (10.0, 300.0, 100.0), (16.0, 950.0, 950.0)],
        ]
        mob = TraceMobility(ARENA, traces)
        sim, net, hub = build(None, members=[1], mobility=mob)
        sim.run(until=8.0)
        assert agent(net, 1).state.parent == 0
        sim.run(until=30.0)
        st = agent(net, 1).state
        assert st.parent is None
        assert st.cost == agent(net, 1).oc_max
        assert st.hop == agent(net, 1).h_max

    def test_count_to_infinity_bounded(self):
        """Even with churn, hop counts never exceed |V| (Lemma 3 in DES)."""
        rng_streams = RngStreams(5)
        from repro.mobility import RandomWaypoint

        mob = RandomWaypoint(12, ARENA, v_min=5.0, v_max=20.0, rng=rng_streams.get("m"))
        sim, net, hub = build(None, members=range(1, 12), mobility=mob)
        for t in range(5, 61, 5):
            sim.run(until=float(t))
            for node in net.nodes:
                assert 0 <= node.agent.state.hop <= net.n


class TestBeacons:
    def test_beacons_flow_periodically(self):
        sim, net, hub = build([[0, 0], [200, 0]], beacon=1.0)
        sim.run(until=10.5)
        # ~10 beacons each; control bytes recorded by the hub.
        assert hub.control_bytes_tx >= 2 * 9 * 28

    def test_e_beacons_larger_than_hop(self):
        p1 = build([[0, 0], [200, 0]], protocol="ss-spst")
        p2 = build([[0, 0], [200, 0]], protocol="ss-spst-e")
        for sim, net, hub in (p1, p2):
            sim.run(until=20.0)
        assert p2[2].control_bytes_tx > p1[2].control_bytes_tx

    def test_beacon_carries_position_and_state(self):
        sim, net, hub = build([[0, 0], [200, 0]])
        sim.run(until=4.0)
        info = agent(net, 1).table.get(0)
        assert info is not None
        assert info.position is not None
        assert "cost" in info.state and "hop" in info.state and "flag" in info.state

    def test_hysteresis_limits_churn_static(self):
        """On a static topology the stabilized tree must stop changing."""
        positions = [[0, 0], [150, 0], [300, 0], [150, 150], [300, 150]]
        sim, net, hub = build(positions, protocol="ss-spst-e")
        sim.run(until=20.0)
        changes_at_20 = sum(n.agent.parent_changes for n in net.nodes)
        sim.run(until=60.0)
        changes_at_60 = sum(n.agent.parent_changes for n in net.nodes)
        assert changes_at_60 == changes_at_20
