"""Tests for the declarative scenario-model API.

Pins the three contracts the redesign is accountable for:

* **Hash stability** — default-axis configs hash byte-identically to the
  pre-redesign era (golden fixture computed on the commit before the
  scenario API existed), so every warm cache keeps hitting.
* **Determinism** — every registered placement/mobility/membership model
  is bit-deterministic per seed, in-process and across worker processes.
* **Backend parity** — the DES scenario's t = 0 topology equals the
  rounds backend's topology for every mobility model, because both
  build through :func:`build_scenario_space`.

Plus the satellite surfaces: the ``daemon_k`` knob, the mobility-churn
MetricSpecs, constant-density arena scaling, traffic models, rotating
membership, the ``--model-param`` / ``--dry-run`` CLI and figm01.
"""

from __future__ import annotations

import json
import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.backends import (
    backend_by_name,
    build_round_scenario,
    metric_extractor,
)
from repro.experiments.campaign import (
    CampaignSpec,
    ResultCache,
    config_key,
    main,
    record_from_result,
    result_from_record,
)
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import FIGURES
from repro.experiments.runner import build_network, run_scenario
from repro.experiments.scenario_models import (
    AXES,
    DEFAULT_MODELS,
    MODEL_NAMES,
    build_scenario_space,
    effective_arena,
    model_by_name,
    non_default_axes,
    resolved_models,
)
from repro.util.geometry import pairwise_distances
from repro.util.rng import RngStreams

FAST = dict(sim_time=12.0, n_nodes=16, group_size=4)

#: mobility models that need no model_params to build
FREE_MOBILITY = ("waypoint", "gauss-markov", "random-walk", "static")


def fast_base(**kw):
    merged = dict(FAST)
    merged.update(kw)
    return ScenarioConfig.quick(**merged)


# ----------------------------------------------------------------------
# Hash stability
# ----------------------------------------------------------------------
class TestGoldenHashes:
    """Byte-exact config hashes from the commit *before* the scenario
    API existed (PR 4 era).  If any of these change, every warm cache in
    the wild silently stops hitting — the one regression this redesign
    must never ship."""

    GOLDEN = {
        "quick-default": "a0f181d6925c723a1591669b",
        "paper-default": "1c5fc0a70752e19000558489",
        "quick-flooding-v10": "854e7fe400e48dd54ef343c9",
        "quick-rounds-e": "22c61e5d3ae771f294d33fe3",
        "quick-central-seed7": "7dcee5d1e7c5632698c135e7",
        "paper-group50": "3fc6e631b307366a83272145",
        "quick-fast-des": "251d5d3b3e3e01dce191f218",
    }

    def configs(self):
        return {
            "quick-default": ScenarioConfig.quick(),
            "paper-default": ScenarioConfig.paper_scale(),
            "quick-flooding-v10": ScenarioConfig.quick(
                protocol="flooding", v_max=10.0
            ),
            "quick-rounds-e": ScenarioConfig.quick(
                backend="rounds", protocol="ss-spst-e", n_nodes=16, group_size=4
            ),
            "quick-central-seed7": ScenarioConfig.quick(daemon="central", seed=7),
            "paper-group50": ScenarioConfig.paper_scale(
                group_size=50, v_max=1.0
            ),
            "quick-fast-des": ScenarioConfig.quick(
                sim_time=12.0, n_nodes=16, group_size=4
            ),
        }

    def test_default_axis_configs_keep_pre_redesign_hashes(self):
        for name, cfg in self.configs().items():
            assert config_key(cfg) == self.GOLDEN[name], name

    def test_every_non_default_axis_forks_the_hash(self):
        base = fast_base()
        forks = [
            {"placement": "grid"},
            {"mobility": "gauss-markov"},
            {"membership": "geographic-cluster"},
            {"traffic": "on-off"},
            {"daemon_k": 2},
            {"density_ref_n": 50},
            {
                "mobility": "gauss-markov",
                "model_params": {"gm_alpha": 0.5},
            },
        ]
        keys = {config_key(base)}
        for change in forks:
            keys.add(config_key(base.replace(**change)))
        assert len(keys) == len(forks) + 1  # all distinct

    def test_model_params_hash_only_when_non_default(self):
        a = fast_base(mobility="gauss-markov")
        b = fast_base(mobility="gauss-markov", model_params={})
        assert config_key(a) == config_key(b)


# ----------------------------------------------------------------------
# Registry and validation
# ----------------------------------------------------------------------
class TestRegistry:
    def test_axes_and_model_names(self):
        assert AXES == ("placement", "mobility", "membership", "traffic")
        assert MODEL_NAMES["placement"] == (
            "uniform",
            "grid",
            "gaussian-clusters",
            "edge-weighted",
        )
        assert MODEL_NAMES["mobility"] == (
            "waypoint",
            "gauss-markov",
            "random-walk",
            "static",
            "platoon",
            "trace",
        )
        assert MODEL_NAMES["membership"] == (
            "static-random",
            "geographic-cluster",
            "rotating",
        )
        assert MODEL_NAMES["traffic"] == ("cbr", "on-off", "multi-source")

    def test_defaults_resolve_and_match_axis_fields(self):
        cfg = fast_base()
        models = resolved_models(cfg)
        for axis in AXES:
            assert models[axis].name == DEFAULT_MODELS[axis]
            assert getattr(cfg, axis) == DEFAULT_MODELS[axis]

    def test_unknown_models_rejected_at_construction(self):
        for axis in AXES:
            with pytest.raises(ValueError, match=f"unknown {axis} model"):
                fast_base(**{axis: "warp-drive"})

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown scenario axis"):
            model_by_name("weather", "sunny")

    def test_unknown_model_param_rejected(self):
        with pytest.raises(ValueError, match="model_params key"):
            fast_base(model_params={"gm_alhpa": 0.5})  # typo

    def test_params_of_unresolved_models_are_allowed(self):
        # gm_alpha belongs to gauss-markov, but a campaign base may carry
        # it while a --grid mobility axis selects the model per cell; only
        # keys no registered model accepts are rejected.
        fast_base(mobility="gauss-markov", model_params={"gm_alpha": 0.5})
        fast_base(model_params={"gm_alpha": 0.5})  # base for a mobility grid

    def test_model_params_normalization(self):
        cfg = fast_base(
            mobility="gauss-markov",
            model_params={"gm_tick": 2.0, "gm_alpha": 0.5},
        )
        assert cfg.model_params == (("gm_alpha", 0.5), ("gm_tick", 2.0))
        assert cfg.params() == {"gm_alpha": 0.5, "gm_tick": 2.0}
        # JSON round-trip shape (list of lists) normalizes identically
        again = fast_base(
            mobility="gauss-markov",
            model_params=[["gm_tick", 2.0], ["gm_alpha", 0.5]],
        )
        assert again == cfg

    def test_model_params_reject_duplicates_and_non_scalars(self):
        with pytest.raises(ValueError, match="duplicate"):
            fast_base(model_params=[["gm_alpha", 1], ["gm_alpha", 2]])
        with pytest.raises(ValueError, match="scalars"):
            fast_base(model_params={"gm_alpha": [1, 2]})

    def test_trace_mobility_needs_file_and_uniform_placement(self, tmp_path):
        with pytest.raises(ValueError, match="trace_file"):
            fast_base(mobility="trace")
        path = tmp_path / "scen.json"
        path.write_text(json.dumps([[[0.0, 10.0, 10.0]]] * FAST["n_nodes"]))
        with pytest.raises(ValueError, match="placement"):
            fast_base(
                mobility="trace",
                placement="grid",
                model_params={"trace_file": str(path)},
            )
        cfg = fast_base(
            mobility="trace", model_params={"trace_file": str(path)}
        )
        space = build_scenario_space(cfg)
        assert np.allclose(space.mobility.positions(0.0), [10.0, 10.0])

    def test_editing_the_trace_file_forks_the_cache_key(self, tmp_path):
        """Cache identity covers what a run *reads*: same config, new
        waypoints in the same file path -> a different config_key, so a
        warm cache cannot serve results from the old trajectories."""
        path = tmp_path / "scen.json"
        path.write_text(json.dumps([[[0.0, 10.0, 10.0]]] * FAST["n_nodes"]))
        cfg = fast_base(
            mobility="trace", model_params={"trace_file": str(path)}
        )
        key_before = config_key(cfg)
        assert config_key(cfg) == key_before  # digest memo is stable
        path.write_text(json.dumps([[[0.0, 99.0, 99.0]]] * FAST["n_nodes"]))
        assert config_key(cfg) != key_before

    def test_trace_node_count_mismatch_fails_at_build(self, tmp_path):
        path = tmp_path / "short.json"
        path.write_text(json.dumps([[[0.0, 1.0, 1.0]]] * 3))
        cfg = fast_base(
            mobility="trace", model_params={"trace_file": str(path)}
        )
        with pytest.raises(ValueError, match="n_nodes"):
            build_scenario_space(cfg)

    def test_rounds_backend_rejects_non_default_traffic(self):
        with pytest.raises(ValueError, match="no rounds realization"):
            fast_base(
                backend="rounds", protocol="ss-spst-e", traffic="on-off"
            )

    def test_rounds_backend_accepts_rotating_membership(self):
        # The rounds backend replays the t = 0 snapshot, which rotation
        # leaves intact by construction.
        cfg = fast_base(
            backend="rounds", protocol="ss-spst-e", membership="rotating"
        )
        topo, _ = build_round_scenario(cfg)
        assert len(topo.members) == cfg.group_size

    def test_rotation_period_must_be_positive(self):
        with pytest.raises(ValueError, match="rotation_period"):
            fast_base(
                membership="rotating", model_params={"rotation_period": 0.0}
            )

    def test_daemon_k_and_density_ref_validation(self):
        with pytest.raises(ValueError, match="daemon_k"):
            fast_base(daemon_k=0)
        with pytest.raises(ValueError, match="density_ref_n"):
            fast_base(density_ref_n=-1)


# ----------------------------------------------------------------------
# Determinism (property a)
# ----------------------------------------------------------------------
def _scenario_fingerprint(args):
    """Top-level (picklable) worker: t = 0 positions + group of a config."""
    placement, mobility, membership, seed = args
    cfg = ScenarioConfig.quick(
        n_nodes=20,
        group_size=6,
        placement=placement,
        mobility=mobility,
        membership=membership,
        seed=seed,
    )
    space = build_scenario_space(cfg)
    pos = space.mobility.positions(0.0)
    return pos.tobytes(), space.source, tuple(space.receivers)


class TestDeterminism:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        placement=st.sampled_from(MODEL_NAMES["placement"]),
        mobility=st.sampled_from(FREE_MOBILITY),
        membership=st.sampled_from(MODEL_NAMES["membership"]),
    )
    def test_every_model_combo_is_bit_deterministic_per_seed(
        self, seed, placement, mobility, membership
    ):
        args = (placement, mobility, membership, seed)
        assert _scenario_fingerprint(args) == _scenario_fingerprint(args)

    def test_deterministic_across_processes(self):
        """The fingerprints a worker pool computes equal the in-process
        ones for every placement x membership combo (property (a)'s
        cross-process half; RngStreams hashes names with SHA-256, not
        PYTHONHASHSEED-dependent ``hash``)."""
        combos = [
            (p, m, g, 11)
            for p in MODEL_NAMES["placement"]
            for m in ("waypoint", "static")
            for g in MODEL_NAMES["membership"]
        ]
        local = [_scenario_fingerprint(c) for c in combos]
        with multiprocessing.Pool(2) as pool:
            remote = pool.map(_scenario_fingerprint, combos)
        assert local == remote

    def test_seed_moves_every_stochastic_model(self):
        for placement in ("uniform", "gaussian-clusters", "edge-weighted"):
            a = _scenario_fingerprint((placement, "waypoint", "static-random", 1))
            b = _scenario_fingerprint((placement, "waypoint", "static-random", 2))
            assert a != b, placement

    def test_default_space_replicates_historical_draws(self):
        """The uniform/waypoint/static-random path must reproduce the
        seed era draw-for-draw: waypoint self-samples placement from the
        ``mobility`` substream and the group comes from ``group``."""
        cfg = fast_base()
        space = build_scenario_space(cfg)
        streams = RngStreams(cfg.seed)
        expected_pos = np.empty((cfg.n_nodes, 2))
        pts = streams.get("mobility").random((cfg.n_nodes, 2))
        expected_pos[:, 0] = pts[:, 0] * cfg.arena_w
        expected_pos[:, 1] = pts[:, 1] * cfg.arena_h
        assert np.array_equal(space.mobility.positions(0.0), expected_pos)
        expected_recv = streams.get("group").choice(
            np.arange(1, cfg.n_nodes), size=cfg.group_size - 1, replace=False
        )
        assert space.receivers == [int(r) for r in expected_recv]
        assert space.source == 0


# ----------------------------------------------------------------------
# Backend parity (property c)
# ----------------------------------------------------------------------
class TestBackendParity:
    @pytest.mark.parametrize("mobility", FREE_MOBILITY + ("trace",))
    def test_des_rounds_t0_topology_parity(self, mobility, tmp_path):
        params = {}
        if mobility == "trace":
            path = tmp_path / "scen.json"
            traces = [
                [[0.0, 30.0 * i + 10.0, 40.0], [60.0, 30.0 * i + 10.0, 90.0]]
                for i in range(20)
            ]
            path.write_text(json.dumps(traces))
            params = {"trace_file": str(path)}
        cfg = ScenarioConfig.quick(
            n_nodes=20,
            group_size=6,
            sim_time=12.0,
            mobility=mobility,
            model_params=params,
        )
        sim, net = build_network(cfg)
        des_pos = net.mobility.positions(0.0).copy()
        topo, _ = build_round_scenario(
            cfg.replace(backend="rounds", protocol="ss-spst-e")
        )
        d = pairwise_distances(des_pos)
        d[d > cfg.max_range] = np.inf
        assert np.array_equal(d, topo.dist)
        assert net.source == topo.source
        assert sorted(net.receivers) == sorted(topo.members - {topo.source})

    def test_parity_under_env_selected_mobility(self, test_mobility):
        """The CI scenario-models leg routes a non-default mobility model
        through the same parity contract."""
        cfg = ScenarioConfig.quick(
            n_nodes=20, group_size=6, sim_time=12.0, mobility=test_mobility
        )
        sim, net = build_network(cfg)
        topo, _ = build_round_scenario(
            cfg.replace(backend="rounds", protocol="ss-spst-e")
        )
        d = pairwise_distances(net.mobility.positions(0.0))
        d[d > cfg.max_range] = np.inf
        assert np.array_equal(d, topo.dist)


# ----------------------------------------------------------------------
# Membership models
# ----------------------------------------------------------------------
class TestMembership:
    def test_geographic_cluster_receivers_are_nearest_to_focus(self):
        cfg = fast_base(membership="geographic-cluster", mobility="static")
        space = build_scenario_space(cfg)
        positions = space.mobility.positions(0.0)
        streams = RngStreams(cfg.seed)
        focus = space.arena.sample_points(1, streams.get("membership"))[0]
        dist = np.hypot(positions[:, 0] - focus[0], positions[:, 1] - focus[1])
        chosen = set(space.receivers)
        others = set(range(1, cfg.n_nodes)) - chosen
        assert len(chosen) == cfg.group_size - 1
        assert 0 not in chosen
        assert max(dist[sorted(chosen)]) <= min(dist[sorted(others)]) + 1e-9

    def test_rotating_initial_group_matches_static_random(self):
        rot = build_scenario_space(fast_base(membership="rotating"))
        stat = build_scenario_space(fast_base())
        assert rot.receivers == stat.receivers

    def test_rotating_membership_churns_but_keeps_group_size(self):
        cfg = fast_base(
            n_nodes=16,
            group_size=5,
            sim_time=30.0,
            protocol="flooding",
            membership="rotating",
            model_params={"rotation_period": 4.0},
        )
        sim, net = build_network(cfg)
        t0 = sorted(net.receivers)
        result = run_scenario(cfg)
        assert result.summary.pdr > 0.0
        # Re-drive a bare network (no agents) to observe the churn directly.
        sim, net = build_network(cfg)
        resolved_models(cfg)["membership"].install(net, cfg)
        sim.run(until=cfg.sim_time)
        t_end = sorted(net.receivers)
        assert len(t_end) == len(t0) == cfg.group_size - 1
        assert t_end != t0  # at least one rotation happened
        assert net.source == 0 and net.nodes[0].is_member

    def test_rotation_never_admits_dead_nodes(self):
        """Battery-limited runs deplete nodes; rotation must not join a
        dead node (its agent's membership machinery would restart on a
        corpse), while dead receivers may still rotate out."""
        cfg = fast_base(
            n_nodes=16,
            group_size=5,
            sim_time=30.0,
            membership="rotating",
            model_params={"rotation_period": 2.0},
        )
        sim, net = build_network(cfg)
        for node in net.nodes:  # every non-member is dead
            if not node.is_member:
                node.alive = False
        members_t0 = set(net.members)
        resolved_models(cfg)["membership"].install(net, cfg)
        sim.run(until=cfg.sim_time)
        # No living outsiders existed, so rotation had nobody to admit.
        assert set(net.members) == members_t0

    def test_source_can_never_leave(self):
        cfg = fast_base()
        sim, net = build_network(cfg)
        with pytest.raises(ValueError, match="source"):
            net.update_membership(leaves=[net.source])

    def test_update_membership_notifies_agents(self):
        calls = []

        class Probe:
            def __init__(self, node):
                self.node = node

            def on_membership_change(self):
                calls.append(self.node.id)

        cfg = fast_base()
        sim, net = build_network(cfg)
        for node in net.nodes:
            node.agent = Probe(node)
        outsider = sorted(set(range(net.n)) - net.members)[0]
        leaver = sorted(net.receivers)[0]
        net.update_membership(joins=[outsider], leaves=[leaver])
        assert set(calls) == {outsider, leaver}
        assert outsider in net.members and leaver not in net.members


# ----------------------------------------------------------------------
# Traffic models
# ----------------------------------------------------------------------
class TestTraffic:
    def _originated(self, sim_time=30.0, **kw):
        cfg = fast_base(protocol="flooding", sim_time=sim_time, **kw)
        return run_scenario(cfg)

    def test_on_off_preserves_average_rate(self):
        cbr = self._originated(sim_time=90.0)
        bursty = self._originated(
            sim_time=90.0,
            traffic="on-off",
            model_params={"onoff_on_s": 2.0, "onoff_off_s": 2.0},
        )
        assert bursty.data_originated > 0
        # The burst rate is scaled by (on+off)/on, so the long-run
        # average matches CBR; 30% slack absorbs burst-boundary noise
        # over the ~40 renewal cycles this window holds.
        assert 0.7 * cbr.data_originated <= bursty.data_originated
        assert bursty.data_originated <= 1.3 * cbr.data_originated

    def test_multi_source_flows_interleave(self):
        cbr = self._originated()
        multi = self._originated(
            traffic="multi-source", model_params={"flows": 3}
        )
        # Aggregate rate preserved (same packet count +- the phase tails).
        assert abs(multi.data_originated - cbr.data_originated) <= 3
        assert multi.summary.pdr > 0.0


# ----------------------------------------------------------------------
# daemon_k, density scaling, churn metrics
# ----------------------------------------------------------------------
class TestSatelliteKnobs:
    def test_daemon_k_reaches_the_distributed_daemon(self):
        from repro.core.convergence import engine_for
        from repro.core.metrics import metric_by_name
        from repro.energy.radio import FirstOrderRadioModel

        cfg = fast_base(backend="rounds", protocol="ss-spst-e", daemon_k=7)
        topo, metric = build_round_scenario(cfg)
        engine = engine_for(topo, metric, "distributed", k=cfg.daemon_k)
        assert engine.daemon.k == 7

    def test_engine_for_rejects_options_with_engine_instance(self):
        from repro.core.convergence import engine_for
        from repro.core.rounds import RoundEngine

        cfg = fast_base(backend="rounds", protocol="ss-spst-e")
        topo, metric = build_round_scenario(cfg)
        engine = RoundEngine(topo, metric, daemon="central")
        with pytest.raises(ValueError, match="daemon options"):
            engine_for(topo, metric, engine, k=3)

    def test_daemon_k_sweeps_and_changes_rounds_results(self):
        base = fast_base(backend="rounds", protocol="ss-spst-e", n_nodes=24, group_size=8)
        spec = CampaignSpec.from_mapping(
            name="k-sweep",
            base=base,
            protocols=("ss-spst-e",),
            seeds=(1,),
            grid={"daemon_k": (1, 24)},
        )
        configs = spec.configs()
        assert [c.daemon_k for c in configs] == [1, 24]
        r1 = backend_by_name("rounds").run(configs[0])
        rn = backend_by_name("rounds").run(configs[1])
        assert r1.summary.converged and rn.summary.converged
        # k = 1 serializes activations; k = n is a randomly-ordered
        # synchronous round.  The trajectories genuinely differ.
        assert (r1.summary.rounds, r1.summary.moves) != (
            rn.summary.rounds,
            rn.summary.moves,
        )

    def test_default_daemon_k_matches_historical_engine_default(self):
        cfg = fast_base(backend="rounds", protocol="ss-spst-e")
        assert cfg.daemon_k == 4
        with_knob = backend_by_name("rounds").run(cfg)
        explicit = backend_by_name("rounds").run(cfg.replace(daemon_k=4))
        assert with_knob.summary.as_dict() == explicit.summary.as_dict()

    def test_effective_arena_constant_density(self):
        cfg = fast_base(density_ref_n=50).replace(n_nodes=200, group_size=4)
        arena = effective_arena(cfg)
        assert arena.width == pytest.approx(cfg.arena_w * 2.0)
        assert arena.height == pytest.approx(cfg.arena_h * 2.0)
        # density n / area is invariant across the sweep
        d200 = 200 / (arena.width * arena.height)
        d50 = 50 / (cfg.arena_w * cfg.arena_h)
        assert d200 == pytest.approx(d50)
        # off by default: arena verbatim
        off = effective_arena(fast_base())
        assert (off.width, off.height) == (
            fast_base().arena_w,
            fast_base().arena_h,
        )

    def test_churn_diagnostics_on_des_results(self):
        moving = run_scenario(fast_base(protocol="flooding"))
        assert moving.link_events_per_s >= 0.0
        assert moving.mean_degree > 0.0
        assert 0.0 <= moving.partition_fraction <= 1.0
        static = run_scenario(fast_base(protocol="flooding", mobility="static"))
        assert static.link_breaks_per_s == 0.0
        assert static.link_events_per_s == 0.0

    def test_churn_metric_specs_registered_and_extractable(self):
        specs = backend_by_name("des").metrics()
        for name in (
            "link_breaks_per_s",
            "link_events_per_s",
            "mean_degree",
            "partition_fraction",
        ):
            assert name in specs
        result = run_scenario(fast_base(protocol="flooding"))
        extract = metric_extractor("link_breaks_per_s", ("des",))
        assert extract(result) == result.link_breaks_per_s

    def test_old_record_without_churn_fields_loads_as_nan(self, tmp_path):
        cfg = fast_base(protocol="flooding")
        record = record_from_result(run_scenario(cfg))
        for f in (
            "link_breaks_per_s",
            "link_events_per_s",
            "mean_degree",
            "partition_fraction",
        ):
            del record["diagnostics"][f]
        cache = ResultCache(str(tmp_path))
        cache.store(cfg, record)
        loaded = result_from_record(cache.load(cfg))
        assert loaded.link_breaks_per_s != loaded.link_breaks_per_s  # nan
        assert loaded.parent_changes == 0  # counters still default to 0

    def test_pre_scenario_era_record_still_hits(self, tmp_path):
        """A record whose config dict predates every scenario-model field
        must load for a default config (the warm-cache guarantee)."""
        cfg = fast_base(protocol="flooding")
        record = record_from_result(run_scenario(cfg))
        for name in (
            "placement",
            "mobility",
            "membership",
            "traffic",
            "model_params",
            "daemon_k",
            "density_ref_n",
        ):
            del record["config"][name]
        cache = ResultCache(str(tmp_path))
        cache.store(cfg, record)
        loaded = cache.load(cfg)
        assert loaded is not None
        assert result_from_record(loaded).config == cfg

    def test_record_with_model_params_round_trips_through_cache(self, tmp_path):
        cfg = fast_base(
            protocol="flooding",
            mobility="gauss-markov",
            model_params={"gm_alpha": 0.5},
        )
        record = record_from_result(run_scenario(cfg))
        cache = ResultCache(str(tmp_path))
        cache.store(cfg, record)
        loaded = cache.load(cfg)  # JSON turned the params into [[...]]
        assert loaded is not None
        assert result_from_record(loaded).config == cfg


# ----------------------------------------------------------------------
# CLI and figures
# ----------------------------------------------------------------------
class TestCliAndFigures:
    FAST_ARGS = [
        "--set",
        "sim_time=12",
        "--set",
        "n_nodes=16",
        "--set",
        "group_size=4",
    ]

    def test_dry_run_lists_scenario_models_and_flags_non_default(self, capsys):
        rc = main(
            [
                "--protocols",
                "flooding",
                "--grid",
                "mobility=waypoint,gauss-markov",
                "--seeds",
                "1",
                "--dry-run",
            ]
            + self.FAST_ARGS
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "# scenario models (non-default marked *):" in out
        assert "#   mobility: waypoint,gauss-markov*" in out
        assert "#   placement: uniform\n" in out
        # per-run lines carry the non-default axis
        assert " mobility=gauss-markov" in out

    def test_dry_run_default_axes_unflagged(self, capsys):
        main(["--protocols", "flooding", "--seeds", "1", "--dry-run"] + self.FAST_ARGS)
        out = capsys.readouterr().out
        assert "#   mobility: waypoint\n" in out
        plan = out.split("(non-default marked *):")[1]
        assert "*" not in plan

    def test_model_param_flag_reaches_the_config(self, capsys):
        rc = main(
            [
                "--protocols",
                "flooding",
                "--grid",
                "membership=rotating",
                "--model-param",
                "rotation_period=5",
                "--seeds",
                "1",
                "--dry-run",
            ]
            + self.FAST_ARGS
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "model_params=rotation_period=5" in out

    def test_model_param_bad_syntax_rejected(self):
        with pytest.raises(SystemExit, match="key=value"):
            main(["--model-param", "oops", "--dry-run"])

    def test_set_model_params_redirected_to_flag(self):
        with pytest.raises(SystemExit, match="--model-param"):
            main(["--set", "model_params=x", "--dry-run"])

    def test_mobility_grid_campaign_runs_end_to_end(self, test_store):
        rc = main(
            [
                "--protocols",
                "flooding",
                "--grid",
                "mobility=waypoint,static",
                "--seeds",
                "1",
                "--store",
                test_store,
                "--quiet",
                "--metrics",
                "pdr,link_breaks_per_s",
            ]
            + self.FAST_ARGS
        )
        assert rc == 0

    def test_figm01_registered_with_mobility_axis(self):
        fig = FIGURES["figm01"]
        assert fig.x_name == "mobility"
        spec = fig.campaign_spec(quick=True, seeds=(1,))
        assert dict(spec.grid)["mobility"] == ("waypoint", "gauss-markov", "static")
        # every grid config constructs (and therefore validates)
        assert len(spec.configs()) == 3 * 2

    def test_figm01_quick_sweep_smoke(self, tmp_path):
        """figm01 end to end at a tiny scale: every mobility model runs
        through the DES, the sweep plots per model, checks evaluate."""
        import dataclasses as dc

        fig = FIGURES["figm01"]
        small = dc.replace(
            fig,
            base_quick=fig.base_quick.replace(
                sim_time=12.0, n_nodes=16, group_size=4
            ),
        )
        result = small.run(quick=True, seeds=(1,))
        assert list(result.series) == ["ss-spst", "ss-spst-e"]
        assert result.x_values == ["waypoint", "gauss-markov", "static"]
        for desc, holds in small.check(result).items():
            assert isinstance(holds, bool), desc


class TestRunnerUnderEnvMobility:
    def test_runner_smoke_with_fixture_mobility(self, test_mobility):
        cfg = fast_base(protocol="ss-spst-e", mobility=test_mobility)
        result = run_scenario(cfg)
        assert 0.0 <= result.summary.pdr <= 1.0
        assert result.config.mobility == test_mobility
