"""Ablation: incremental dirty-set execution for the SS-SPST-E metric.

PR 1's dirty-set executors degenerated to global re-evaluation for
exactly the metric the paper is about (``dependency_radius = None``).
With incremental flag/path-price maintenance in :class:`GlobalView`,
SS-SPST-E now gets finite dirty sets (ancestor-chain flag flips →
subtree seeding); this bench quantifies the two workloads:

* **convergence** — stabilizing a fresh network (everything moves, so
  dirty sets stay large; the gain is the warm in-place view), and
* **fault recovery** — the self-stabilization story: transient state
  corruption of single nodes on a *settled* tree, absorbed through
  :meth:`IncrementalCentralDaemonExecutor.run_perturbed`.  A baseline
  executor re-evaluates all n nodes every round no matter how local the
  fault; the incremental one only touches the fault's dependency region.

Both executors must produce bit-identical trajectories; recovery must be
>= 3x faster at n = 200.

Knobs: ``REPRO_BENCH_INC_N`` (default 200) rescales the topology;
``REPRO_BENCH_JSON=dir`` writes a machine-readable ``BENCH_*.json``
record (the CI perf-trajectory artifact).
"""

import json
import os
import time

import numpy as np

from repro.core import (
    CentralDaemonExecutor,
    IncrementalCentralDaemonExecutor,
    NodeState,
    fresh_states,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.graph import Topology

N = int(os.environ.get("REPRO_BENCH_INC_N", "200"))
SEEDS = (7, 11, 29)
FAULTS_PER_KIND = 12  # cost corruptions + parent flips per topology


def _sample_settled(seed: int, n: int = N):
    """A connected geometric topology on which the central daemon
    converges (the F/E fixed-order limit cycles are a documented
    instability, not this bench's subject), plus its settled result."""
    rng = np.random.default_rng(seed)
    metric = metric_by_name("energy", EXAMPLE_RADIO)
    for _ in range(50):
        pos = rng.random((n, 2)) * (11.0 * n)  # sparse MANET density
        members = [int(x) for x in rng.choice(n, size=n // 4, replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if not topo.is_connected():
            continue
        settled = IncrementalCentralDaemonExecutor(topo, metric).run(
            fresh_states(topo, metric)
        )
        if settled.converged:
            return topo, metric, settled
    raise RuntimeError(f"no convergent topology for seed {seed}")


def _faults(topo, metric, settled, seed: int):
    """Transient single-node corruptions of a settled state vector:
    garbage advertised costs and flipped parent pointers (the arbitrary
    transient faults self-stabilization recovers from)."""
    prng = np.random.default_rng(seed)
    out = []
    for _ in range(FAULTS_PER_KIND):
        v = int(prng.integers(1, topo.n))
        st = settled.states[v]
        corrupted = float(prng.uniform(0.0, metric.infinity(topo)))
        out.append((v, NodeState(parent=st.parent, cost=corrupted, hop=st.hop)))
    for _ in range(FAULTS_PER_KIND):
        v = int(prng.integers(1, topo.n))
        st = settled.states[v]
        nbrs = [u for u in topo.neighbors(v) if u != st.parent]
        if nbrs:
            flipped = int(prng.choice(nbrs))
            out.append((v, NodeState(parent=flipped, cost=st.cost, hop=st.hop)))
    return out


def _assert_identical(a, b):
    assert a.states == b.states
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cost_history == b.cost_history
    assert a.moves == b.moves


def _measure():
    stats = {
        "n": N,
        "seeds": list(SEEDS),
        "converge": {"t_base": 0.0, "t_inc": 0.0, "evals_base": 0, "evals_inc": 0},
        "recover": {
            "t_base": 0.0,
            "t_inc": 0.0,
            "evals_base": 0,
            "evals_inc": 0,
            "faults": 0,
        },
    }
    for seed in SEEDS:
        topo, metric, settled = _sample_settled(seed)
        init = fresh_states(topo, metric)

        t0 = time.perf_counter()
        base = CentralDaemonExecutor(topo, metric).run(list(init))
        stats["converge"]["t_base"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        inc = IncrementalCentralDaemonExecutor(topo, metric).run(list(init))
        stats["converge"]["t_inc"] += time.perf_counter() - t0
        _assert_identical(base, inc)
        stats["converge"]["evals_base"] += base.evaluations
        stats["converge"]["evals_inc"] += inc.evaluations

        faults = _faults(topo, metric, settled, seed + 1)
        t0 = time.perf_counter()
        base_res = []
        for v, ns in faults:
            st = list(settled.states)
            st[v] = ns
            base_res.append(CentralDaemonExecutor(topo, metric).run(st))
        stats["recover"]["t_base"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        inc_res = [
            IncrementalCentralDaemonExecutor(topo, metric).run_perturbed(
                list(settled.states), [fault]
            )
            for fault in faults
        ]
        stats["recover"]["t_inc"] += time.perf_counter() - t0
        for b, i in zip(base_res, inc_res):
            _assert_identical(b, i)
        stats["recover"]["evals_base"] += sum(r.evaluations for r in base_res)
        stats["recover"]["evals_inc"] += sum(r.evaluations for r in inc_res)
        stats["recover"]["faults"] += len(faults)
    for phase in ("converge", "recover"):
        p = stats[phase]
        p["speedup"] = p["t_base"] / p["t_inc"]
        p["evals_ratio"] = p["evals_base"] / p["evals_inc"]
    return stats


def _emit_json(stats) -> None:
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_incremental_energy.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
    print(f"  wrote {path}")


def test_incremental_energy_ablation(benchmark):
    stats = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    for phase in ("converge", "recover"):
        p = stats[phase]
        print(
            f"{phase:9s} base {p['t_base']:6.2f}s / {p['evals_base']:7d} evals"
            f"  inc {p['t_inc']:6.2f}s / {p['evals_inc']:7d} evals"
            f"  -> {p['speedup']:.2f}x time, {p['evals_ratio']:.1f}x evals"
        )
    _emit_json(stats)
    # Convergence gains are modest (dirty sets stay large while the whole
    # tree forms); gate on the deterministic evaluation counts — a
    # wall-clock parity assert would flake on noisy shared runners.
    assert stats["converge"]["evals_inc"] <= stats["converge"]["evals_base"]
    # Fault recovery is the point of the dirty sets: the acceptance bar.
    # Measured ~6x time / ~4.5x evals, so 3x keeps real margin; the evals
    # ratio is deterministic and catches regressions even under noise.
    assert stats["recover"]["speedup"] >= 3.0
    assert stats["recover"]["evals_ratio"] >= 3.0
