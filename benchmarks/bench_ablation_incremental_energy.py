"""Ablation: incremental dirty-set execution for the SS-SPST-E metric.

PR 1's dirty-set executors degenerated to global re-evaluation for
exactly the metric the paper is about; PR 2's incremental flag/path-price
maintenance gave SS-SPST-E finite dirty sets, and the daemon/engine
decomposition made the speedup daemon-generic — this bench runs the
**randomized daemon** (the schedule the SS-SPST-E convergence claims are
actually stated under, since fixed orders admit limit cycles) through
:class:`~repro.core.rounds.RoundEngine` in both evaluation modes and
quantifies three workloads:

* **convergence** — stabilizing a fresh network (everything moves, so
  dirty sets stay large; the gain is the warm in-place view),
* **fault recovery** — the self-stabilization story: transient state
  corruption of single nodes on a *settled* tree, absorbed through
  ``run_perturbed``.  Full evaluation re-evaluates all n nodes every
  round no matter how local the fault; the incremental engine only
  touches the fault's dependency region, and
* **deep chain** — stabilizing a line topology far deeper than any
  geometric network, the worst case for SS-SPST-E's ancestor-chain
  pricing.  The cross-evaluation price-prefix memo makes the chain-step
  count *linear* in n (it was O(n²) when the memo reset per evaluating
  node); the recorded ``chain_steps`` pins that.

Both modes must produce bit-identical trajectories; recovery must be
>= 3x faster at n = 200.

Knobs: ``REPRO_BENCH_INC_N`` (default 200) rescales the topology,
``REPRO_BENCH_DEEP_N`` (default 2000) the deep line,
``REPRO_BENCH_INC_SEEDS`` trims replications (CI quick mode), and
``REPRO_BENCH_JSON=dir`` writes a machine-readable ``BENCH_*.json``
record (the CI perf-trajectory artifact).
"""

import json
import os
import time

import numpy as np

from repro.core import NodeState, RoundEngine, fresh_states, metric_by_name
from repro.core.examples import EXAMPLE_RADIO
from repro.experiments.backends import build_round_scenario
from repro.experiments.config import ScenarioConfig
from repro.graph import Topology

N = int(os.environ.get("REPRO_BENCH_INC_N", "200"))
DEEP_N = int(os.environ.get("REPRO_BENCH_DEEP_N", "2000"))
DAEMON = "randomized"
SEEDS = tuple(
    int(s) for s in os.environ.get("REPRO_BENCH_INC_SEEDS", "7,11,29").split(",") if s
)
FAULTS_PER_KIND = 12  # cost corruptions + parent flips per topology
#: the >= 3x acceptance bar is an n >= 200 property (dirty-set gains
#: scale with network size); smaller quick-mode topologies get a floor
#: that still catches a broken dirty set without flaking.
MIN_RECOVER_X = 3.0 if N >= 200 else 1.5


def _engine(topo, metric, incremental, seed):
    return RoundEngine(
        topo,
        metric,
        daemon=DAEMON,
        incremental=incremental,
        rng=np.random.default_rng(seed),
    )


def _bench_config(seed: int, n: int = N) -> ScenarioConfig:
    """The bench workload as a rounds-backend scenario: sparse MANET
    density (11n m arena side), quarter-group membership, the worked
    examples' radio constants."""
    return ScenarioConfig.quick(
        backend="rounds",
        protocol="ss-spst-e",
        daemon=DAEMON,
        n_nodes=n,
        arena_w=11.0 * n,
        arena_h=11.0 * n,
        max_range=250.0,
        group_size=max(2, n // 4),
        e_elec=EXAMPLE_RADIO.e_elec,
        e_rx=EXAMPLE_RADIO.e_rx,
        eps_amp=EXAMPLE_RADIO.eps_amp,
        alpha=EXAMPLE_RADIO.alpha,
        seed=seed,
    )


def _sample_settled(seed: int, n: int = N):
    """A connected geometric topology plus its settled result under the
    randomized daemon (which converges almost surely where fixed orders
    can limit-cycle).

    Scenario construction routes through the experiment backend
    (:func:`~repro.experiments.backends.build_round_scenario`) so bench
    and campaign share one code path; disconnected or non-convergent
    draws retry on a derived seed."""
    for attempt in range(50):
        cfg = _bench_config(seed + 1000 * attempt, n)
        topo, metric = build_round_scenario(cfg)
        if not topo.is_connected():
            continue
        settled = _engine(topo, metric, True, seed).run(fresh_states(topo, metric))
        if settled.converged:
            return topo, metric, settled
    raise RuntimeError(f"no convergent topology for seed {seed}")


def _faults(topo, metric, settled, seed: int):
    """Transient single-node corruptions of a settled state vector:
    garbage advertised costs and flipped parent pointers (the arbitrary
    transient faults self-stabilization recovers from)."""
    prng = np.random.default_rng(seed)
    out = []
    for _ in range(FAULTS_PER_KIND):
        v = int(prng.integers(1, topo.n))
        st = settled.states[v]
        corrupted = float(prng.uniform(0.0, metric.infinity(topo)))
        out.append((v, NodeState(parent=st.parent, cost=corrupted, hop=st.hop)))
    for _ in range(FAULTS_PER_KIND):
        v = int(prng.integers(1, topo.n))
        st = settled.states[v]
        nbrs = [u for u in topo.neighbors(v) if u != st.parent]
        if nbrs:
            flipped = int(prng.choice(nbrs))
            out.append((v, NodeState(parent=flipped, cost=st.cost, hop=st.hop)))
    return out


def _assert_identical(a, b):
    assert a.states == b.states
    assert a.rounds == b.rounds
    assert a.converged == b.converged
    assert a.cost_history == b.cost_history
    assert a.moves == b.moves


def _measure_deep_chain():
    """Stabilize a deep line incrementally; record time and chain steps.

    A full-evaluation counterpart at this depth would be wall-clock
    prohibitive (that is the point), so the cell gates on the incremental
    engine's *chain-step linearity* — the deterministic quantity the
    cross-evaluation price-prefix memo is accountable for — rather than a
    speedup ratio.
    """
    metric = metric_by_name("energy", EXAMPLE_RADIO)
    edges = {(i, i + 1): 60.0 for i in range(DEEP_N - 1)}
    topo = Topology.from_edges(
        DEEP_N, edges, source=0, members=[1, DEEP_N // 2, DEEP_N - 1]
    )
    eng = RoundEngine(topo, metric, daemon="central", incremental=True)
    t0 = time.perf_counter()
    res = eng.run(fresh_states(topo, metric))
    elapsed = time.perf_counter() - t0
    assert res.converged
    return {
        "n": DEEP_N,
        "t_inc": elapsed,
        "evals_inc": res.evaluations,
        "chain_steps": res.chain_steps,
        "chain_steps_per_node": res.chain_steps / DEEP_N,
    }


def _measure():
    stats = {
        "n": N,
        "daemon": DAEMON,
        "seeds": list(SEEDS),
        "converge": {"t_base": 0.0, "t_inc": 0.0, "evals_base": 0, "evals_inc": 0},
        "recover": {
            "t_base": 0.0,
            "t_inc": 0.0,
            "evals_base": 0,
            "evals_inc": 0,
            "faults": 0,
        },
    }
    for seed in SEEDS:
        topo, metric, settled = _sample_settled(seed)
        init = fresh_states(topo, metric)

        t0 = time.perf_counter()
        base = _engine(topo, metric, False, seed).run(list(init))
        stats["converge"]["t_base"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        inc = _engine(topo, metric, True, seed).run(list(init))
        stats["converge"]["t_inc"] += time.perf_counter() - t0
        _assert_identical(base, inc)
        stats["converge"]["evals_base"] += base.evaluations
        stats["converge"]["evals_inc"] += inc.evaluations

        faults = _faults(topo, metric, settled, seed + 1)
        t0 = time.perf_counter()
        base_res = []
        for i, (v, ns) in enumerate(faults):
            st = list(settled.states)
            st[v] = ns
            base_res.append(_engine(topo, metric, False, seed + i).run(st))
        stats["recover"]["t_base"] += time.perf_counter() - t0
        t0 = time.perf_counter()
        inc_res = [
            _engine(topo, metric, True, seed + i).run_perturbed(
                list(settled.states), [fault]
            )
            for i, fault in enumerate(faults)
        ]
        stats["recover"]["t_inc"] += time.perf_counter() - t0
        for b, i in zip(base_res, inc_res):
            _assert_identical(b, i)
        stats["recover"]["evals_base"] += sum(r.evaluations for r in base_res)
        stats["recover"]["evals_inc"] += sum(r.evaluations for r in inc_res)
        stats["recover"]["faults"] += len(faults)
    for phase in ("converge", "recover"):
        p = stats[phase]
        p["speedup"] = p["t_base"] / p["t_inc"]
        # run_perturbed with an already-absorbed fault does zero work, so
        # the incremental evaluation count can legitimately be 0.
        p["evals_ratio"] = p["evals_base"] / max(p["evals_inc"], 1)
    stats["deepline"] = _measure_deep_chain()
    return stats


def _emit_json(stats) -> None:
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_incremental_energy.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
    print(f"  wrote {path}")


def test_incremental_energy_ablation(benchmark):
    stats = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    for phase in ("converge", "recover"):
        p = stats[phase]
        print(
            f"{phase:9s} base {p['t_base']:6.2f}s / {p['evals_base']:7d} evals"
            f"  inc {p['t_inc']:6.2f}s / {p['evals_inc']:7d} evals"
            f"  -> {p['speedup']:.2f}x time, {p['evals_ratio']:.1f}x evals"
        )
    d = stats["deepline"]
    print(
        f"deepline  n={d['n']} inc {d['t_inc']:6.2f}s / {d['evals_inc']:5d} evals"
        f"  chain_steps={d['chain_steps']} ({d['chain_steps_per_node']:.1f}/node)"
    )
    _emit_json(stats)
    # Convergence gains are modest (dirty sets stay large while the whole
    # tree forms); gate on the deterministic evaluation counts — a
    # wall-clock parity assert would flake on noisy shared runners.
    assert stats["converge"]["evals_inc"] <= stats["converge"]["evals_base"]
    # Fault recovery is the point of the dirty sets: the acceptance bar —
    # incremental randomized-daemon SS-SPST-E >= 3x its full-evaluation
    # counterpart at n = 200 (measures ~3.5x on the backend-sampled
    # topologies; smaller quick-mode runs get a scaled floor).  The evals
    # ratio is deterministic and catches regressions even under
    # wall-clock noise.
    assert stats["recover"]["speedup"] >= MIN_RECOVER_X
    assert stats["recover"]["evals_ratio"] >= MIN_RECOVER_X
    # Deep-chain linearity: cross-evaluation price-prefix reuse keeps the
    # chain walk O(n) on a line (it was O(n²) with per-evaluation memos).
    assert stats["deepline"]["chain_steps"] <= 12 * stats["deepline"]["n"]
