"""Bench regenerating the paper's Figure 11 series (see FIGURES['fig11'])."""

from conftest import figure_bench


def test_fig11(benchmark, run_cache):
    figure_bench(benchmark, "fig11", run_cache)
