"""Bench regenerating the paper's Figure 13 series (see FIGURES['fig13'])."""

from conftest import figure_bench


def test_fig13(benchmark, run_cache):
    figure_bench(benchmark, "fig13", run_cache)
