"""Bench regenerating the paper's Figure 7 series (see FIGURES['fig07'])."""

from conftest import figure_bench


def test_fig07(benchmark, run_cache):
    figure_bench(benchmark, "fig07", run_cache)
