"""Bench regenerating the paper's Figure 15 series (see FIGURES['fig15'])."""

from conftest import figure_bench


def test_fig15(benchmark, run_cache):
    figure_bench(benchmark, "fig15", run_cache)
