"""Bench regenerating the paper's Figure 16 series (see FIGURES['fig16'])."""

from conftest import figure_bench


def test_fig16(benchmark, run_cache):
    figure_bench(benchmark, "fig16", run_cache)
