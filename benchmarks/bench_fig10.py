"""Bench regenerating the paper's Figure 10 series (see FIGURES['fig10'])."""

from conftest import figure_bench


def test_fig10(benchmark, run_cache):
    figure_bench(benchmark, "fig10", run_cache)
