"""Extension bench: network lifetime under finite batteries.

The paper's motivation ("depletion of battery power" as a fault source)
taken to its measurable conclusion: give every non-source node the same
battery and compare when the first node dies under the energy-aware tree
versus an energy-oblivious protocol.
"""

from repro.experiments.config import ScenarioConfig
from repro.experiments.lifetime import compare_lifetimes

BATTERY_J = 1.0
BASE = ScenarioConfig.quick(
    sim_time=120.0, group_size=20, v_max=2.0, n_nodes=50
)


def test_energy_awareness_extends_lifetime(benchmark):
    def _run():
        return compare_lifetimes(
            ["ss-spst-e", "ss-spst", "flooding"],
            battery_j=BATTERY_J,
            base=BASE,
            seeds=(1, 2),
        )

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    print()
    first_death = {}
    for protocol, runs in results.items():
        ts = [
            r.first_death_t if r.first_death_t is not None else float("inf")
            for r in runs
        ]
        deaths = sum(len(r.deaths) for r in runs) / len(runs)
        first_death[protocol] = sum(ts) / len(ts)
        shown = "never" if first_death[protocol] == float("inf") else f"{first_death[protocol]:.1f}s"
        print(f"{protocol:10s} first death: {shown:>8s}  mean deaths: {deaths:.1f}")
    # Energy-oblivious flooding burns out first; the energy-aware tree
    # lasts at least as long as the hop-metric tree.
    assert first_death["flooding"] <= first_death["ss-spst"]
    assert first_death["ss-spst-e"] >= first_death["flooding"]
