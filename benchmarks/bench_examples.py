"""Bench for the worked examples (Figures 1-6): stabilization of the
reconstructed 10-node topology under all four metrics, Figure 5's
discard-steering check, and the gap to the exhaustive E_min optimum."""

from repro.experiments.paper_examples import (
    format_examples_report,
    optimality_gap,
    run_figure1_examples,
    run_figure5_example,
)


def test_worked_examples(benchmark):
    outcomes = benchmark.pedantic(run_figure1_examples, rounds=3, iterations=1)
    print()
    print(format_examples_report())

    # Example 1: 3 rounds for plain SS-SPST.
    assert outcomes["hop"].rounds == 3
    # Examples 2-5: refinement costs rounds; ordering hop <= T <= F.
    assert outcomes["hop"].rounds <= outcomes["tx"].rounds <= outcomes["farthest"].rounds
    # Example 5: the E tree is cheapest under the E metric and silences
    # node 4 (whose neighborhood holds the overhearing non-members 8, 9).
    e_costs = {name: oc.e_cost for name, oc in outcomes.items()}
    assert e_costs["energy"] == min(e_costs.values())
    assert 4 not in outcomes["energy"].forwarding

    # Figure 5: only the E metric avoids the noisy parent.
    parents = run_figure5_example()
    assert parents["energy"] == 2
    assert all(parents[m] == 1 for m in ("hop", "tx", "farthest"))


def test_e_min_gap(benchmark):
    gap = benchmark.pedantic(optimality_gap, rounds=1, iterations=1)
    print(f"\nE_min gap ratio: {gap['ratio']:.4f}")
    # The distributed fixpoint must be within 25% of the global optimum on
    # the worked example (it is exactly optimal in our reconstruction).
    assert gap["ratio"] <= 1.25
