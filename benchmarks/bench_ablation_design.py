"""Ablations of the reproduction's own design choices (DESIGN.md §4-5):

* **capture effect** — ns-2-style power capture (CPThresh=10) vs. a
  capture-free collision model; capture is what keeps dense multicast
  trees deliverable;
* **route-flap damping** — the switch threshold + hold-down the DES
  agents add on top of the pure rule; without it distributed SS-SPST-E
  churns and loses delivery;
* **power control** — SS-SPST-E's energy advantage over the on-demand
  baselines comes jointly from power-controlled data ranges and pruning;
  forcing full-range data transmissions quantifies that.
"""

import dataclasses

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_network, run_scenario
from repro.metrics.hub import MetricsHub
from repro.protocols.registry import make_agent_factory
from repro.protocols.ss_spst import SSSPSTConfig
from repro.traffic.cbr import CbrSource

BASE = dict(sim_time=90.0, v_max=5.0, group_size=30)
SEEDS = (1, 2)


def _mean_pdr_epp(protocol, seeds=SEEDS, ss_config=None, **kw):
    pdrs, epps = [], []
    for seed in seeds:
        cfg = ScenarioConfig.quick(protocol=protocol, seed=seed, **{**BASE, **kw})
        if ss_config is None:
            r = run_scenario(cfg)
            pdrs.append(r.summary.pdr)
            epps.append(r.summary.energy_per_packet_mj)
            continue
        sim, network = build_network(cfg)
        hub = MetricsHub(n_receivers=len(network.receivers))
        hub.set_packet_size_hint(cfg.packet_bytes)
        network.hub = hub
        network.attach_agents(make_agent_factory(protocol, ss_config=ss_config))
        network.start()
        traffic = CbrSource(
            network, rate_kbps=cfg.rate_kbps, packet_bytes=cfg.packet_bytes,
            start_time=cfg.traffic_start,
        )
        traffic.start()
        sim.run(until=cfg.sim_time)
        s = hub.summary(network.total_energy())
        pdrs.append(s.pdr)
        epps.append(s.energy_per_packet_mj)
    return sum(pdrs) / len(pdrs), sum(epps) / len(epps)


def _collisions(protocol, capture_threshold, seed=1, **kw):
    cfg = ScenarioConfig.quick(
        protocol=protocol, seed=seed, capture_threshold=capture_threshold,
        **{**BASE, **kw},
    )
    r = run_scenario(cfg)
    return r.frames_collided, r.summary.pdr


def test_capture_effect(benchmark):
    """ns-2-style power capture converts overlapping receptions whose
    power ratio exceeds CPThresh into deliveries.  The guaranteed effect
    is mechanical — strictly fewer corrupted frames; the PDR gain follows
    in contention-heavy scenarios (flooding, large group)."""

    def _run():
        with_cap = _collisions("flooding", 10.0, group_size=50)
        no_cap = _collisions("flooding", 1e9, group_size=50)
        return with_cap, no_cap

    (coll_c, pdr_c), (coll_n, pdr_n) = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(f"\ncollisions with capture={coll_c} (pdr {pdr_c:.3f})  "
          f"without={coll_n} (pdr {pdr_n:.3f})")
    assert coll_c < coll_n
    assert pdr_c >= pdr_n - 0.02


def _churn(protocol, ss_config, seed=1, **kw):
    cfg = ScenarioConfig.quick(protocol=protocol, seed=seed, **{**BASE, **kw})
    sim, network = build_network(cfg)
    hub = MetricsHub(n_receivers=len(network.receivers))
    hub.set_packet_size_hint(cfg.packet_bytes)
    network.hub = hub
    network.attach_agents(make_agent_factory(protocol, ss_config=ss_config))
    network.start()
    CbrSource(
        network, rate_kbps=cfg.rate_kbps, packet_bytes=cfg.packet_bytes,
        start_time=cfg.traffic_start,
    ).start()
    sim.run(until=cfg.sim_time)
    return sum(n.agent.parent_changes for n in network.nodes), hub.summary(
        network.total_energy()
    )


def test_flap_damping(benchmark):
    """Damping's mechanical effect: it must cut parent churn sharply.

    (Its PDR effect is configuration-dependent — damping wins in most
    cells of the A/B grid but not all — so the robust claim is churn.)
    """
    damped = SSSPSTConfig(switch_threshold=0.10, hold_down_intervals=3.0)
    undamped = SSSPSTConfig(switch_threshold=0.0, hold_down_intervals=0.0)

    def _run():
        cd, sd = _churn("ss-spst-e", damped)
        cu, su = _churn("ss-spst-e", undamped)
        return cd, sd.pdr, cu, su.pdr

    cd, pd, cu, pu = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(f"\nchurn damped={cd} (pdr {pd:.3f})  undamped={cu} (pdr {pu:.3f})")
    assert cd < cu * 0.8  # damping removes at least 20% of parent churn


def test_power_control_value(benchmark):
    """SS-SPST-E (power controlled) vs flooding (full power, maximal
    redundancy): the energy gap is the headline of the whole paper."""

    def _run():
        _, e_ss = _mean_pdr_epp("ss-spst-e")
        _, e_flood = _mean_pdr_epp("flooding")
        return e_ss, e_flood

    e_ss, e_flood = benchmark.pedantic(_run, rounds=1, iterations=1)
    print(f"\nenergy/packet: ss-spst-e={e_ss:.1f} mJ  flooding={e_flood:.1f} mJ")
    assert e_ss < e_flood * 0.6
