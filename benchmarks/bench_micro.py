"""Micro-benchmarks of the substrate hot paths (classic pytest-benchmark).

These guard the simulator's throughput: the figure benches run hundreds of
thousands of events, so regressions here multiply across the whole suite.
"""

import numpy as np

from repro.core import GlobalView, SyncExecutor, fresh_states, metric_by_name
from repro.core.examples import EXAMPLE_RADIO
from repro.graph import Topology
from repro.mobility import RandomWaypoint
from repro.net import MacConfig, Network, Packet, PacketKind
from repro.sim import Simulator
from repro.util.geometry import Arena, pairwise_distances
from repro.util.rng import RngStreams


def test_kernel_event_throughput(benchmark):
    """Schedule + execute 10k chained events."""

    def run():
        sim = Simulator()

        def chain(k):
            if k:
                sim.schedule(0.001, chain, k - 1)

        sim.schedule(0.0, chain, 10_000)
        sim.run()
        return sim.events_executed

    executed = benchmark(run)
    assert executed == 10_001


def test_pairwise_distance_50(benchmark):
    pts = np.random.default_rng(0).random((50, 2)) * 750
    d = benchmark(pairwise_distances, pts)
    assert d.shape == (50, 50)


def test_mobility_advance(benchmark):
    rng = np.random.default_rng(1)
    m = RandomWaypoint(50, Arena(), v_min=1.0, v_max=20.0, rng=rng)
    t = [0.0]

    def step():
        t[0] += 0.25
        return m.positions(t[0])

    pos = benchmark(step)
    assert pos.shape == (50, 2)


def test_medium_broadcast_50(benchmark):
    from repro.energy import FirstOrderRadioModel
    from repro.mobility import StaticPlacement

    streams = RngStreams(5)
    sim = Simulator()
    arena = Arena()
    mob = StaticPlacement(50, arena, rng=streams.get("place"))
    net = Network(sim, mob, FirstOrderRadioModel(), streams, mac_config=MacConfig(jitter_max=0.0))
    seq = [0]

    def send():
        pkt = Packet(PacketKind.DATA, 0, 0, seq[0], 512)
        seq[0] += 1
        net.medium.broadcast(0, pkt, 250.0)
        sim.run()  # drain deliveries
        return pkt

    benchmark(send)


def test_round_executor_energy_metric(benchmark):
    rng = np.random.default_rng(3)
    while True:
        pos = rng.random((30, 2)) * 500
        topo = Topology.from_positions(pos, 250.0, source=0, members=list(range(0, 30, 3)))
        if topo.is_connected():
            break
    metric = metric_by_name("energy", EXAMPLE_RADIO)

    def stabilize():
        # Randomized daemon: the sync daemon can 2-cycle under E (see
        # bench_ablation_rounds), which would poison the timing.
        from repro.core import RandomizedDaemonExecutor

        ex = RandomizedDaemonExecutor(topo, metric, np.random.default_rng(42))
        return ex.run(fresh_states(topo, metric), max_rounds=300)

    res = benchmark(stabilize)
    assert res.converged


def test_join_cost_evaluation(benchmark):
    rng = np.random.default_rng(4)
    while True:
        pos = rng.random((40, 2)) * 500
        topo = Topology.from_positions(pos, 250.0, source=0, members=list(range(0, 40, 2)))
        if topo.is_connected():
            break
    metric = metric_by_name("energy", EXAMPLE_RADIO)
    res = SyncExecutor(topo, metric).run(fresh_states(topo, metric))
    view = GlobalView(topo, res.states)
    v = 17
    u = topo.neighbors(v)[0]

    cost = benchmark(metric.join_cost, view, v, u)
    assert cost >= 0.0
