"""Shared machinery for the figure benches.

``figure_bench`` runs one figure's quick-scale sweep through the campaign
engine (cached across figures: e.g. Figures 7/8/9 extract different
metrics from the *same* simulations), prints the numeric series and an
ASCII rendering, and asserts the figure's shape checks.

Set ``REPRO_BENCH_SEEDS`` / ``REPRO_BENCH_FULL=1`` to rescale,
``REPRO_BENCH_WORKERS=N`` to run each figure's grid on a process pool,
and ``REPRO_BENCH_STORE=spec`` (a JSON record dir, a ``.sqlite`` path,
or an explicit ``json:``/``sqlite:`` spec; ``REPRO_BENCH_CACHE_DIR`` is
the legacy JSON-dir form) to persist runs across bench sessions.
"""

from __future__ import annotations

import os
from typing import Dict

import pytest

from repro.analysis import ascii_plot, shape_report
from repro.experiments.figures import FIGURES, FigureDef

#: RunResult cache shared by every bench in the session
_RUN_CACHE: Dict = {}


def _seeds():
    raw = os.environ.get("REPRO_BENCH_SEEDS", "1,2")
    return tuple(int(s) for s in raw.split(","))


def _full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def _workers() -> int:
    return int(os.environ.get("REPRO_BENCH_WORKERS", "1"))


def _cache_dir():
    return os.environ.get("REPRO_BENCH_CACHE_DIR") or None


def _store():
    return os.environ.get("REPRO_BENCH_STORE") or None


@pytest.fixture(scope="session")
def run_cache() -> Dict:
    return _RUN_CACHE


def figure_bench(benchmark, fig_id: str, run_cache: Dict) -> None:
    """Run, print and shape-check one figure (used by bench_figXX files)."""
    fig: FigureDef = FIGURES[fig_id]
    quick = not _full_scale()
    seeds = _seeds()

    def _run():
        return fig.run(
            quick=quick,
            seeds=seeds,
            cache=run_cache,
            workers=_workers(),
            cache_dir=_cache_dir(),
            store=_store(),
        )

    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    checks = fig.check(result)
    print()
    print(result.format_table(f"{fig.fig_id}: {fig.title} (seeds={seeds})"))
    print(ascii_plot(result.x_values, result.series, y_label=fig.y_name, x_label=fig.x_name))
    print(shape_report(checks))
    if fig.notes:
        print(f"  note: {fig.notes}")
    failed = [desc for desc, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed for {fig.fig_id}: {failed}"
