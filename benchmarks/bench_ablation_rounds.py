"""Ablation: rounds-to-stabilize per metric on random geometric graphs.

Quantifies the paper's narrative that richer metrics buy energy at the
price of extra stabilization rounds (Examples 1-5: 3/4/5/5 rounds), and
measures SS-SPST-F's documented instability as its non-convergence rate.
"""

import numpy as np

from repro.core import (
    RandomizedDaemonExecutor,
    SyncExecutor,
    fresh_states,
    metric_by_name,
)
from repro.core.examples import EXAMPLE_RADIO
from repro.core.metrics import METRIC_NAMES
from repro.graph import Topology

N_GRAPHS = 30


def _topologies():
    out = []
    rng = np.random.default_rng(2024)
    while len(out) < N_GRAPHS:
        n = int(rng.integers(15, 40))
        pos = rng.random((n, 2)) * 500.0
        members = [int(x) for x in rng.choice(n, size=max(2, n // 3), replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            out.append(topo)
    return out


def _stabilize_all():
    topos = _topologies()
    stats = {}
    for name in METRIC_NAMES:
        rounds, failures = [], 0
        for i, topo in enumerate(topos):
            metric = metric_by_name(name, EXAMPLE_RADIO)
            res = SyncExecutor(topo, metric).run(fresh_states(topo, metric))
            if not res.converged:
                # The documented F-style oscillation: retry under the
                # randomized daemon (jittered beacons).
                failures += 1
                res = RandomizedDaemonExecutor(
                    topo, metric, np.random.default_rng(i)
                ).run(fresh_states(topo, metric), max_rounds=400)
            if res.converged:
                rounds.append(res.rounds)
        stats[name] = {
            "mean_rounds": float(np.mean(rounds)) if rounds else float("nan"),
            "sync_failures": failures,
            "converged": len(rounds),
        }
    return stats


def test_rounds_to_stabilize(benchmark):
    stats = benchmark.pedantic(_stabilize_all, rounds=1, iterations=1)
    print()
    for name, s in stats.items():
        print(
            f"{name:9s} mean rounds={s['mean_rounds']:5.2f} "
            f"sync-oscillations={s['sync_failures']:2d}/{N_GRAPHS} "
            f"(converged {s['converged']})"
        )
    # Richer metrics stabilize no faster than hop counting.
    assert stats["hop"]["mean_rounds"] <= stats["tx"]["mean_rounds"] + 0.5
    assert stats["hop"]["mean_rounds"] <= stats["energy"]["mean_rounds"] + 0.5
    # The F metric exhibits the instability the paper reports: it fails to
    # converge under the synchronous daemon far more often than hop/T.
    assert stats["farthest"]["sync_failures"] >= stats["hop"]["sync_failures"]
    assert stats["farthest"]["sync_failures"] > 0
    # hop/T/E converge everywhere (randomized daemon); F may genuinely
    # limit-cycle on a few graphs — the instability is structural, which
    # is exactly the paper's finding ("dynamic nature causes unstability").
    for name in ("hop", "tx", "energy"):
        assert stats[name]["converged"] == N_GRAPHS
    assert stats["farthest"]["converged"] >= int(0.8 * N_GRAPHS)
