"""Deep-scale stabilization: the array engine at 10^4-10^5 nodes.

The object engine tops out around n = 200 per study (figd02); the
columnar :class:`~repro.core.array_engine.ArrayRoundEngine` over a
:class:`~repro.graph.sparse.SparseTopology` is built to take the daemon
studies to 10^4-10^5.  This bench pins that claim:

* **n = 10^4 cells** — hop and tx under the synchronous daemon (the
  snapshot schedule where batched evaluation shines: one n-node step per
  round), and SS-SPST-E under the distributed daemon with a large k
  (snapshot chunks; the *synchronous* schedule provably limit-cycles for
  E at scale — fixed orders admit cycles, see docs/convergence.md — so a
  sync E cell would measure non-convergence, not speed).  The
  acceptance bar is "stabilizes in seconds": asserted with a generous
  ceiling so shared-runner noise cannot flake it, with the measured
  time recorded in the JSON artifact for trend tracking.
* **speedup cell** — object vs array vs kernel (``REPRO_KERNEL=numba``,
  skipped when numba is absent) on the same n = N tx workload,
  asserting bit-identical trajectories — including evaluation counts —
  (the contract that makes the speedup trustworthy) and recording the
  ratios.
* **legacy-apply gate** — the PR-6 apply path (per-move commits +
  from-scratch snapshots, preserved behind ``legacy_apply=True``) must
  cost >= 3x the incremental path on the deep E workload, measured on
  the snapshot *stage* counter: that is the stage PR 6 rebuilt O(n)
  every step and this PR re-prices per dirty subtree.  (E's *commit*
  stage is per-move in both paths by bit-identity necessity — the
  dirty closure needs per-move flag-flip reports — so it is recorded
  in the profiles but not gated; the batched commit's own win shows in
  the hop/tx cells.)  Stage ratios come from the same process, so
  shared-runner noise largely cancels, and the ratio grows with n.
* **n = 10^5 cells** (``REPRO_BENCH_FULL=1``) — hop and tx under the
  synchronous daemon: feasibility at a scale where the dense topology
  cannot even be built (an (n, n) float64 matrix would be 80 GB), with
  the per-stage profile asserting commit+snapshot is no longer the
  dominant cost.
* **store-throughput cell** — deep-scale campaigns persist one record
  per run, so the result store must keep up: bulk-ingest rate and
  warm-lookup latency for the JSON record dir vs the SQLite columnar
  store over 10^4 realistic records (scaled down with ``..._N``).

Knobs: ``REPRO_BENCH_DEEPSCALE_N`` rescales the headline cells (CI quick
mode uses 2000), ``REPRO_BENCH_FULL=1`` adds the 10^5 cell, and
``REPRO_BENCH_JSON=dir`` writes ``BENCH_deepscale.json``.
"""

import json
import os
import time

from repro.core import engine_for, fresh_states, is_legitimate, metric_by_name
from repro.core import kernels
from repro.core.examples import EXAMPLE_RADIO
from repro.graph import SparseTopology

N = int(os.environ.get("REPRO_BENCH_DEEPSCALE_N", "10000"))
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"
FULL_N = 100_000
#: deployment density: side grows with sqrt(n) so mean degree (~20, a
#: dense-enough MANET to be connected w.h.p.) stays n-independent
RADIUS = 80.0
SIDE_PER_SQRT_N = 30.0
#: "stabilizes in seconds", with slack for noisy shared runners (the
#: n = 10^4 tx cell measures ~7 s on a dev box)
MAX_SECONDS = 120.0 if N >= 10_000 else 60.0
#: chain pricing re-prices whole subtrees per move, so SS-SPST-E costs
#: an order of magnitude more than tx (~165 s at n = 10^4 on a dev box)
ENERGY_MAX_SECONDS = 600.0


def _topo(n: int, seed: int = 2) -> SparseTopology:
    side = SIDE_PER_SQRT_N * (n ** 0.5)
    return SparseTopology.random_geometric(
        n, side=side, radius=RADIUS, seed=seed
    )


def _run(topo, metric_name, daemon, engine, **daemon_options):
    metric = metric_by_name(metric_name, EXAMPLE_RADIO)
    eng = engine_for(
        topo, metric, daemon, incremental=True, engine=engine,
        **daemon_options,
    )
    t0 = time.perf_counter()
    res = eng.run(fresh_states(topo, metric), max_rounds=600)
    elapsed = time.perf_counter() - t0
    return res, elapsed, metric, eng


def _profile_of(eng):
    """The array engine's per-stage counters, rounded for the artifact."""
    prof = getattr(eng, "profile", None)
    if prof is None:
        return None
    return {
        k: (round(v, 4) if isinstance(v, float) else v)
        for k, v in prof.items()
    }


def _cell(topo, metric_name, daemon, **options):
    res, elapsed, metric, eng = _run(
        topo, metric_name, daemon, "array", **options
    )
    assert res.converged, f"{metric_name}/{daemon} did not stabilize"
    assert is_legitimate(topo, metric, res.states)
    return {
        "n": topo.n,
        "metric": metric_name,
        "daemon": daemon,
        **options,
        "t": elapsed,
        "rounds": res.rounds,
        "moves": res.moves,
        "evaluations": res.evaluations,
        "profile": _profile_of(eng),
    }


def _measure():
    topo = _topo(N)
    stats = {
        "n": N,
        "mean_degree": len(topo._nbr) / topo.n,
        "connected": topo.is_connected(),
        "cells": [],
    }
    stats["cells"].append(_cell(topo, "hop", "synchronous"))
    stats["cells"].append(_cell(topo, "tx", "synchronous"))
    # E under a snapshot schedule that converges: distributed-k chunks
    # (sync E limit-cycles at scale; serial daemons converge but waste
    # the batched evaluator on single-node steps).
    energy = _cell(topo, "energy", "distributed", k=max(1, N // 20))
    stats["cells"].append(energy)
    # The PR-6 apply path (per-move commits, from-scratch snapshots) on
    # the same deep E workload: the incremental path must beat it >= 3x
    # on the stage it replaced (see module docstring).
    legacy = _cell(
        topo, "energy", "distributed", k=max(1, N // 20), legacy_apply=True
    )
    stats["cells"].append(legacy)
    new_snap = energy["profile"]["snapshot_s"]
    old_snap = legacy["profile"]["snapshot_s"]
    stats["legacy_apply_gate"] = {
        "snapshot_s": new_snap,
        "legacy_snapshot_s": old_snap,
        "speedup": old_snap / new_snap if new_snap > 0 else float("inf"),
        "commit_s": energy["profile"]["commit_s"],
        "legacy_commit_s": legacy["profile"]["commit_s"],
    }

    # Object vs array vs kernel on the headline tx workload: identical
    # trajectories — evaluations included — (the point of the contract);
    # the object/array speedup is recorded not asserted (wall clock on
    # shared runners is noise; bit-identity is the gate).  The kernel
    # run is skipped when numba is absent (the fallback would just
    # re-measure numpy).
    obj, t_obj, _, _ = _run(topo, "tx", "synchronous", "object")
    arr, t_arr, _, _ = _run(topo, "tx", "synchronous", "array")
    for a, b in ((obj, arr),):
        assert a.states == b.states
        assert a.rounds == b.rounds
        assert a.converged == b.converged
        assert a.cost_history == b.cost_history
        assert a.moves == b.moves
        assert a.evaluations == b.evaluations
    speedup = {
        "t_object": t_obj,
        "t_array": t_arr,
        "speedup": t_obj / t_arr if t_arr > 0 else float("inf"),
        "kernel": None,
    }
    if kernels.numba_available():
        before = kernels.active_kernel()
        kernels.set_kernel("numba")
        try:
            ker, t_ker, _, _ = _run(topo, "tx", "synchronous", "array")
        finally:
            kernels.set_kernel(before)
        assert ker.states == arr.states
        assert ker.rounds == arr.rounds
        assert ker.cost_history == arr.cost_history
        assert ker.moves == arr.moves
        assert ker.evaluations == arr.evaluations
        speedup["kernel"] = {
            "t_kernel": t_ker,
            "speedup_vs_object": t_obj / t_ker if t_ker > 0 else float("inf"),
        }
    stats["speedup_tx_sync"] = speedup

    stats["store"] = _store_cell()

    if FULL:
        for m in ("hop", "tx"):
            c = _cell(_topo(FULL_N), m, "synchronous")
            stats["cells"].append(c)
            # the tentpole's acceptance: at 10^5 the commit+snapshot
            # stages (the PR-6 bottleneck) are no longer dominant
            prof = c["profile"]
            assert (
                prof["commit_s"] + prof["snapshot_s"]
                <= prof["evaluate_s"] + prof["fold_s"]
            ), f"commit+snapshot dominates at n={FULL_N}: {prof}"
    return stats


def _store_cell():
    """Result-store throughput: ingest + warm lookup, JSON dir vs SQLite.

    The records are realistic (one real rounds run templated across
    seeds, keyed by the genuine config hash), and both stores ingest
    through their bulk path (``put_many``), which is what ``migrate``
    and a deep-scale campaign's write stream exercise.
    """
    import tempfile

    from repro.experiments.campaign import _execute
    from repro.experiments.config import ScenarioConfig
    from repro.experiments.store import JsonDirStore, SqliteStore, config_key

    base = ScenarioConfig.quick(
        backend="rounds", n_nodes=16, group_size=4, protocol="ss-spst"
    )
    template = _execute(base)
    records = min(10_000, max(1000, N))
    items = []
    for i in range(records):
        cfg = base.replace(seed=i + 1)
        record = dict(template, config=dict(template["config"], seed=i + 1))
        items.append((config_key(cfg), record))
    sample = items[:: max(1, records // 500)]

    out = {"records": records}
    with tempfile.TemporaryDirectory() as tmp:
        backends = (
            ("json", lambda: JsonDirStore(os.path.join(tmp, "records"))),
            (
                "sqlite",
                lambda: SqliteStore(
                    os.path.join(tmp, "records.sqlite"), batch_size=256
                ),
            ),
        )
        for label, open_backend in backends:
            store = open_backend()
            t0 = time.perf_counter()
            store.put_many(items)
            store.flush()
            ingest_s = time.perf_counter() - t0
            t0 = time.perf_counter()
            for key, _ in sample:
                assert store.get(key) is not None
            lookup_s = (time.perf_counter() - t0) / len(sample)
            store.close()
            out[label] = {
                "ingest_s": ingest_s,
                "ingest_per_s": (
                    records / ingest_s if ingest_s > 0 else float("inf")
                ),
                "lookup_us": lookup_s * 1e6,
            }
    return out


def _emit_json(stats) -> None:
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "BENCH_deepscale.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(stats, fh, indent=2, sort_keys=True)
    print(f"  wrote {path}")


def test_deepscale(benchmark):
    stats = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    for c in stats["cells"]:
        tag = " legacy" if c.get("legacy_apply") else ""
        prof = c.get("profile") or {}
        stages = " ".join(
            f"{k.rstrip('_s')}={prof[k]:.2f}"
            for k in ("commit_s", "snapshot_s", "evaluate_s", "fold_s")
            if k in prof
        )
        print(
            f"n={c['n']:>6d} {c['metric']:7s} {c['daemon']:12s}"
            f" {c['t']:7.2f}s rounds={c['rounds']:4d} moves={c['moves']}"
            f"{tag}  [{stages}]"
        )
    sp = stats["speedup_tx_sync"]
    print(
        f"object vs array (n={N} tx sync): {sp['t_object']:.2f}s vs "
        f"{sp['t_array']:.2f}s -> {sp['speedup']:.1f}x"
        + (
            f"; numba {sp['kernel']['t_kernel']:.2f}s "
            f"({sp['kernel']['speedup_vs_object']:.1f}x)"
            if sp["kernel"]
            else "; numba absent"
        )
    )
    gate = stats["legacy_apply_gate"]
    print(
        f"legacy apply path (deep E snapshot stage): "
        f"{gate['legacy_snapshot_s']:.2f}s vs "
        f"{gate['snapshot_s']:.2f}s -> {gate['speedup']:.1f}x"
    )
    st = stats["store"]
    for label in ("json", "sqlite"):
        cell = st[label]
        print(
            f"store[{label}]: {st['records']} records, "
            f"ingest {cell['ingest_per_s']:.0f}/s, "
            f"warm lookup {cell['lookup_us']:.0f}us"
        )
    _emit_json(stats)
    # The headline acceptance: deep-scale stabilization in seconds.
    for c in stats["cells"]:
        if c["n"] != N or c.get("legacy_apply"):
            continue
        bound = ENERGY_MAX_SECONDS if c["metric"] == "energy" else MAX_SECONDS
        assert c["t"] <= bound, (
            f"{c['metric']}/{c['daemon']} took {c['t']:.1f}s at n={N}"
        )
    # The incremental path must beat the PR-6 apply path >= 3x on the
    # stage it replaced (scratch snapshots are O(n) per step,
    # incremental re-pricing is O(dirty subtree) — the ratio grows
    # with n, ~7x at the CI quick scale N = 2000).
    assert gate["speedup"] >= 3.0, gate
