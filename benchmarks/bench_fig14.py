"""Bench regenerating the paper's Figure 14 series (see FIGURES['fig14'])."""

from conftest import figure_bench


def test_fig14(benchmark, run_cache):
    figure_bench(benchmark, "fig14", run_cache)
