"""Ablation: how close does distributed SS-SPST-E get to the true E_min?

Compares the stabilized tree's E-metric cost against the exhaustive
optimum on small random graphs and against the BIP/MIP and local-search
heuristics at evaluation scale.
"""

import numpy as np

from repro.core import RandomizedDaemonExecutor, fresh_states
from repro.core.examples import EXAMPLE_RADIO
from repro.core.metrics import EnergyAwareMetric
from repro.graph import (
    Topology,
    bip_tree,
    exhaustive_min_energy_tree,
    local_search_min_energy_tree,
)


def _small_graphs(count=5, n=7):
    out = []
    rng = np.random.default_rng(7)
    while len(out) < count:
        pos = rng.random((n, 2)) * 260.0
        members = [int(x) for x in rng.choice(n, size=3, replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            out.append(topo)
    return out


def _gap_study():
    ratios = []
    for i, topo in enumerate(_small_graphs()):
        metric = EnergyAwareMetric(EXAMPLE_RADIO)
        res = RandomizedDaemonExecutor(topo, metric, np.random.default_rng(i)).run(
            fresh_states(topo, metric), max_rounds=300
        )
        if not res.converged:
            continue
        cost = metric.tree_cost(topo, res.tree(topo))
        _, best = exhaustive_min_energy_tree(topo, metric, max_trees=500_000)
        ratios.append(cost / best if best > 0 else 1.0)
    return ratios


def test_distributed_vs_exhaustive(benchmark):
    ratios = benchmark.pedantic(_gap_study, rounds=1, iterations=1)
    print(f"\nE_min ratios (stabilized/optimal): {[f'{r:.3f}' for r in ratios]}")
    assert ratios, "no graph converged"
    assert all(r >= 1.0 - 1e-9 for r in ratios)  # optimum is a lower bound
    assert float(np.mean(ratios)) <= 1.35  # greedy fixpoints stay close


def test_vs_heuristics(benchmark):
    """SS-SPST-E vs centralized BIP and local search at 30 nodes."""
    rng = np.random.default_rng(11)
    while True:
        pos = rng.random((30, 2)) * 600.0
        members = [int(x) for x in rng.choice(30, size=10, replace=False)]
        topo = Topology.from_positions(pos, 250.0, source=0, members=members)
        if topo.is_connected():
            break
    metric = EnergyAwareMetric(EXAMPLE_RADIO)

    def _all():
        res = RandomizedDaemonExecutor(topo, metric, np.random.default_rng(0)).run(
            fresh_states(topo, metric), max_rounds=400
        )
        ss = metric.tree_cost(topo, res.tree(topo)) if res.converged else float("inf")
        bip = metric.tree_cost(topo, bip_tree(topo, EXAMPLE_RADIO))
        _, ls = local_search_min_energy_tree(topo, metric)
        return ss, bip, ls

    ss, bip, ls = benchmark.pedantic(_all, rounds=1, iterations=1)
    print(f"\nSS-SPST-E={ss*1e9:.1f}  BIP={bip*1e9:.1f}  local-search={ls*1e9:.1f} nJ/bit")
    # The distributed protocol should be comparable to (or beat) BIP under
    # the E objective, since BIP ignores overhearing.
    assert ss <= bip * 1.5
