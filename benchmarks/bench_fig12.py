"""Bench regenerating the paper's Figure 12 series (see FIGURES['fig12'])."""

from conftest import figure_bench


def test_fig12(benchmark, run_cache):
    figure_bench(benchmark, "fig12", run_cache)
