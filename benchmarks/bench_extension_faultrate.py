"""Extension bench: the paper's causal chain, measured.

Section 7 explains every trend through *speed -> fault rate ->
stabilization lag*.  This bench measures the middle link directly (link
breaks per second under random waypoint as a function of v_max) and
correlates it with the protocol-level symptom (SS-SPST-E unavailability),
closing the argument the paper leaves qualitative.
"""

import numpy as np

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.mobility import RandomWaypoint, link_churn
from repro.util.geometry import Arena

VELOCITIES = (1.0, 5.0, 10.0, 20.0)


def _measure():
    arena = Arena(750.0, 750.0)
    fault_rates = []
    unavailability = []
    for v in VELOCITIES:
        mob = RandomWaypoint(
            50, arena, v_min=1.0, v_max=v, rng=np.random.default_rng(17)
        )
        stats = link_churn(mob, max_range=250.0, duration=120.0, dt=1.0)
        fault_rates.append(stats.break_rate)
        cfg = ScenarioConfig.quick(protocol="ss-spst-e", v_max=v, seed=1, sim_time=90.0)
        unavailability.append(run_scenario(cfg).summary.unavailability)
    return fault_rates, unavailability


def test_fault_rate_drives_unavailability(benchmark):
    fault_rates, unav = benchmark.pedantic(_measure, rounds=1, iterations=1)
    print()
    print(f"{'v_max':>8s} {'breaks/s':>10s} {'unavail':>9s}")
    for v, f, u in zip(VELOCITIES, fault_rates, unav):
        print(f"{v:8.1f} {f:10.3f} {u:9.3f}")
    # The middle link: fault rate strictly grows with speed.
    assert all(a < b for a, b in zip(fault_rates, fault_rates[1:]))
    # And the symptom follows the cause: the fastest setting is less
    # available than the slowest.
    assert unav[-1] > unav[0]
    # Correlation between cause and symptom across the sweep.
    r = float(np.corrcoef(fault_rates, unav)[0, 1])
    print(f"corr(fault rate, unavailability) = {r:.3f}")
    assert r > 0.5
