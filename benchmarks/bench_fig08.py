"""Bench regenerating the paper's Figure 8 series (see FIGURES['fig08'])."""

from conftest import figure_bench


def test_fig08(benchmark, run_cache):
    figure_bench(benchmark, "fig08", run_cache)
