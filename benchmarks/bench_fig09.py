"""Bench regenerating the paper's Figure 9 series (see FIGURES['fig09'])."""

from conftest import figure_bench


def test_fig09(benchmark, run_cache):
    figure_bench(benchmark, "fig09", run_cache)
